#include "stream/ops.h"

#include "common/stopwatch.h"

namespace pmkm {

namespace {

// Number of chunks a bucket of `total` points yields at `chunk_points`.
uint32_t NumChunks(size_t total, size_t chunk_points) {
  if (total == 0) return 0;
  return static_cast<uint32_t>((total + chunk_points - 1) / chunk_points);
}

}  // namespace

// ---------------------------------------------------------------------------
// ScanOperator

ScanOperator::ScanOperator(std::vector<std::string> paths,
                           size_t chunk_points,
                           std::shared_ptr<PointChunkQueue> out)
    : Operator("scan"),
      paths_(std::move(paths)),
      chunk_points_(chunk_points),
      out_(std::move(out)) {
  PMKM_CHECK(chunk_points_ > 0);
  PMKM_CHECK(out_ != nullptr);
  out_->AddProducer();
}

Status ScanOperator::Run() {
  // CloseProducer exactly once, on every exit path.
  struct Closer {
    PointChunkQueue* q;
    ~Closer() { q->CloseProducer(); }
  } closer{out_.get()};

  for (const std::string& path : paths_) {
    PMKM_ASSIGN_OR_RETURN(GridBucketReader reader,
                          GridBucketReader::Open(path));
    const uint32_t total =
        NumChunks(reader.total_points(), chunk_points_);
    uint32_t id = 0;
    Dataset chunk(reader.dim());
    for (;;) {
      PMKM_ASSIGN_OR_RETURN(bool more, reader.Next(chunk_points_, &chunk));
      if (!more) break;
      PointChunk msg;
      msg.cell = reader.cell();
      msg.partition_id = id++;
      msg.total_partitions = total;
      msg.points = std::move(chunk);
      chunk = Dataset(reader.dim());
      if (!out_->Push(std::move(msg))) {
        return Status::Cancelled("scan output queue cancelled");
      }
      ++chunks_emitted_;
    }
  }
  return Status::OK();
}

void ScanOperator::Abort() { out_->Cancel(); }

// ---------------------------------------------------------------------------
// MemoryScanOperator

MemoryScanOperator::MemoryScanOperator(std::vector<GridBucket> cells,
                                       size_t chunk_points,
                                       std::shared_ptr<PointChunkQueue> out)
    : Operator("memory-scan"),
      cells_(std::move(cells)),
      chunk_points_(chunk_points),
      out_(std::move(out)) {
  PMKM_CHECK(chunk_points_ > 0);
  PMKM_CHECK(out_ != nullptr);
  out_->AddProducer();
}

Status MemoryScanOperator::Run() {
  struct Closer {
    PointChunkQueue* q;
    ~Closer() { q->CloseProducer(); }
  } closer{out_.get()};

  for (const GridBucket& cell : cells_) {
    const size_t n = cell.points.size();
    const uint32_t total = NumChunks(n, chunk_points_);
    uint32_t id = 0;
    for (size_t begin = 0; begin < n; begin += chunk_points_) {
      const size_t end = std::min(n, begin + chunk_points_);
      PointChunk msg;
      msg.cell = cell.cell;
      msg.partition_id = id++;
      msg.total_partitions = total;
      msg.points = cell.points.Slice(begin, end);
      if (!out_->Push(std::move(msg))) {
        return Status::Cancelled("scan output queue cancelled");
      }
    }
  }
  return Status::OK();
}

void MemoryScanOperator::Abort() { out_->Cancel(); }

// ---------------------------------------------------------------------------
// PartialKMeansOperator

PartialKMeansOperator::PartialKMeansOperator(
    const KMeansConfig& config, std::shared_ptr<PointChunkQueue> in,
    std::shared_ptr<CentroidQueue> out, std::string name)
    : Operator(std::move(name)),
      partial_(config),
      in_(std::move(in)),
      out_(std::move(out)) {
  PMKM_CHECK(in_ != nullptr && out_ != nullptr);
  out_->AddProducer();
}

Status PartialKMeansOperator::Run() {
  struct Closer {
    CentroidQueue* q;
    ~Closer() { q->CloseProducer(); }
  } closer{out_.get()};

  for (;;) {
    std::optional<PointChunk> chunk = in_->Pop();
    if (!chunk.has_value()) {
      if (in_->cancelled()) {
        return Status::Cancelled("partial input queue cancelled");
      }
      return Status::OK();  // end of stream
    }
    // Partition id feeds the seed derivation so clones stay reproducible
    // regardless of which clone picks up which chunk.
    const uint64_t tag =
        (static_cast<uint64_t>(
             static_cast<uint32_t>(chunk->cell.lat_index))
         << 32) ^
        static_cast<uint32_t>(chunk->cell.lon_index) ^
        (static_cast<uint64_t>(chunk->partition_id) << 17);
    PMKM_ASSIGN_OR_RETURN(PartialResult result,
                          partial_.Cluster(chunk->points, tag));
    CentroidMessage msg;
    msg.cell = chunk->cell;
    msg.partition_id = chunk->partition_id;
    msg.total_partitions = chunk->total_partitions;
    msg.centroids = std::move(result.centroids);
    msg.partial_sse = result.sse;
    msg.partial_iterations = result.iterations;
    msg.input_points = result.input_points;
    if (!out_->Push(std::move(msg))) {
      return Status::Cancelled("partial output queue cancelled");
    }
    ++chunks_processed_;
  }
}

void PartialKMeansOperator::Abort() {
  in_->Cancel();
  out_->Cancel();
}

// ---------------------------------------------------------------------------
// MergeKMeansOperator

MergeKMeansOperator::MergeKMeansOperator(const MergeKMeansConfig& config,
                                         std::shared_ptr<CentroidQueue> in)
    : Operator("merge-kmeans"), merger_(config), in_(std::move(in)) {
  PMKM_CHECK(in_ != nullptr);
}

Status MergeKMeansOperator::MergeCell(GridCellId cell) {
  PendingCell& pc = pending_.at(cell);
  WeightedDataset pooled(pc.dim);
  for (const auto& [id, part] : pc.parts) {
    pooled.AppendAll(part);
  }
  const Stopwatch watch;
  PMKM_ASSIGN_OR_RETURN(ClusteringModel model, merger_.Merge(pooled));
  CellClustering result;
  result.cell = cell;
  result.pooled_centroids = pooled.size();
  result.input_points = pc.input_points;
  result.merge_seconds = watch.ElapsedSeconds();
  result.model = std::move(model);
  results_[cell] = std::move(result);
  pending_.erase(cell);
  return Status::OK();
}

Status MergeKMeansOperator::Run() {
  for (;;) {
    std::optional<CentroidMessage> msg = in_->Pop();
    if (!msg.has_value()) {
      if (in_->cancelled()) {
        return Status::Cancelled("merge input queue cancelled");
      }
      break;  // end of stream
    }
    PendingCell& pc = pending_[msg->cell];
    if (!pc.initialized) {
      pc.dim = msg->centroids.dim();
      pc.expected = msg->total_partitions;
      pc.initialized = true;
    } else if (pc.expected != msg->total_partitions) {
      return Status::Internal("inconsistent partition count for cell " +
                              msg->cell.ToString());
    }
    if (!pc.parts.emplace(msg->partition_id, std::move(msg->centroids))
             .second) {
      return Status::Internal("duplicate partition " +
                              std::to_string(msg->partition_id) +
                              " for cell " + msg->cell.ToString());
    }
    pc.input_points += msg->input_points;
    if (pc.parts.size() == pc.expected) {
      PMKM_RETURN_NOT_OK(MergeCell(msg->cell));
    }
  }
  if (!pending_.empty()) {
    return Status::Internal(
        "stream ended with " + std::to_string(pending_.size()) +
        " incomplete cell(s)");
  }
  return Status::OK();
}

void MergeKMeansOperator::Abort() { in_->Cancel(); }

}  // namespace pmkm
