#include "stream/ops.h"

#include <chrono>
#include <functional>
#include <thread>

#include "cluster/kernels/kernel.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/rolling.h"
#include "obs/trace.h"
#include "stream/checkpoint.h"

namespace pmkm {

namespace {

// Number of chunks a bucket of `total` points yields at `chunk_points`.
uint32_t NumChunks(size_t total, size_t chunk_points) {
  if (total == 0) return 0;
  return static_cast<uint32_t>((total + chunk_points - 1) / chunk_points);
}

// Payload bytes of a point chunk / centroid set (row-major doubles; a
// weighted row carries its weight too).
size_t PointBytes(size_t rows, size_t dim) {
  return rows * dim * sizeof(double);
}
size_t WeightedBytes(size_t rows, size_t dim) {
  return rows * (dim + 1) * sizeof(double);
}

// Records one work-unit latency into the named rolling histogram (last-
// minute percentiles on /metrics and /statusz); no-op without a registry.
void RecordRollingUs(MetricsRegistry* metrics, const char* name,
                     double seconds) {
  if (metrics != nullptr) {
    metrics->rolling_histogram(name).Record(
        static_cast<uint64_t>(seconds * 1e6));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ScanOperator

ScanOperator::ScanOperator(std::vector<std::string> paths,
                           size_t chunk_points,
                           std::shared_ptr<PointChunkQueue> out,
                           RetryPolicy retry)
    : Operator("scan"),
      paths_(std::move(paths)),
      chunk_points_(chunk_points),
      out_(std::move(out)),
      retry_(retry) {
  PMKM_CHECK(chunk_points_ > 0);
  PMKM_CHECK(out_ != nullptr);
  out_->AddProducer();
}

void ScanOperator::CloseOutputOnce() {
  if (!output_closed_) {
    output_closed_ = true;
    out_->CloseProducer();
  }
}

void ScanOperator::Finish() { CloseOutputOnce(); }

Status ScanOperator::EmitBucketOnce(const std::string& path) {
  const Stopwatch bucket_watch;
  ScopedSpan span(obs().trace, "scan.bucket", "io");
  if (span.enabled()) span.AddArg("path", path);
  PMKM_ASSIGN_OR_RETURN(GridBucketReader reader,
                        GridBucketReader::Open(path));
  current_cell_ = reader.cell();
  cell_known_ = true;
  if (span.enabled()) span.AddArg("cell", reader.cell().ToString());
  const uint32_t total = NumChunks(reader.total_points(), chunk_points_);
  Dataset chunk(reader.dim());
  // Fast-forward past partitions already pushed by a previous attempt
  // (in-bucket retry or executor restart): re-emitting them would trip the
  // merge operator's duplicate-partition check.
  uint32_t id = 0;
  while (id < partitions_emitted_) {
    PMKM_ASSIGN_OR_RETURN(bool more, reader.Next(chunk_points_, &chunk));
    if (!more) break;
    ++id;
  }
  for (;;) {
    PMKM_ASSIGN_OR_RETURN(bool more, reader.Next(chunk_points_, &chunk));
    if (!more) break;
    const size_t rows = chunk.size();
    const size_t bytes = PointBytes(rows, chunk.dim());
    PointChunk msg;
    msg.cell = reader.cell();
    msg.partition_id = id++;
    msg.total_partitions = total;
    msg.points = std::move(chunk);
    chunk = Dataset(reader.dim());
    const Stopwatch push_watch;
    const bool pushed = out_->Push(std::move(msg));
    mutable_stats().queue_wait_seconds += push_watch.ElapsedSeconds();
    if (!pushed) {
      return Status::Cancelled("scan output queue cancelled");
    }
    mutable_stats().rows_in += rows;
    mutable_stats().bytes_in += bytes;
    mutable_stats().rows_out += rows;
    mutable_stats().bytes_out += bytes;
    ++partitions_emitted_;
    ++chunks_emitted_;
    TickProgress();
    PublishLive();
  }
  RecordRollingUs(obs().metrics, "scan.bucket_us",
                  bucket_watch.ElapsedSeconds());
  return Status::OK();
}

Status ScanOperator::EmitBucketWithRetry(const std::string& path) {
  if (failure_policy() != FailurePolicy::kSkipAndContinue) {
    return EmitBucketOnce(path);
  }
  Retrier retrier(retry_, std::hash<std::string>{}(path));
  for (;;) {
    const Status st = EmitBucketOnce(path);
    if (st.ok() || st.IsCancelled()) return st;
    if (!retrier.AllowRetry(st)) return st;
    ++io_retries_;
    ++mutable_stats().retries;
  }
}

Status ScanOperator::Run() {
  while (bucket_index_ < paths_.size()) {
    if (CancelRequested()) {
      CloseOutputOnce();
      return Status::Cancelled("run cancelled");
    }
    const std::string& path = paths_[bucket_index_];
    const Status st = EmitBucketWithRetry(path);
    if (!st.ok()) {
      if (st.IsCancelled()) {
        CloseOutputOnce();
        return st;
      }
      if (failure_policy() == FailurePolicy::kSkipAndContinue) {
        PMKM_LOG(Warning) << "quarantining bucket " << path << ": " << st;
        quarantined_.push_back(
            QuarantinedBucket{path, current_cell_, cell_known_, st});
        ++mutable_stats().items_dropped;
        if (cell_known_) {
          // Partitions of this cell may already be in flight; tell the
          // merge to discard the whole cell.
          PointChunk marker;
          marker.cell = current_cell_;
          marker.dropped = true;
          marker.drop_reason = st.ToString();
          if (!out_->Push(std::move(marker))) {
            CloseOutputOnce();
            return Status::Cancelled("scan output queue cancelled");
          }
          TickProgress();
        }
      } else {
        // kFailFast fails here; kRetryOperator leaves the producer open so
        // the executor can restart us without downstream seeing a bogus
        // end-of-stream (Finish() closes it once restarts are exhausted).
        if (failure_policy() != FailurePolicy::kRetryOperator) {
          CloseOutputOnce();
        }
        return st;
      }
    }
    ++bucket_index_;
    partitions_emitted_ = 0;
    cell_known_ = false;
  }
  CloseOutputOnce();
  return Status::OK();
}

void ScanOperator::Abort() { out_->Cancel(); }

// ---------------------------------------------------------------------------
// MemoryScanOperator

MemoryScanOperator::MemoryScanOperator(std::vector<GridBucket> cells,
                                       size_t chunk_points,
                                       std::shared_ptr<PointChunkQueue> out)
    : Operator("memory-scan"),
      cells_(std::move(cells)),
      chunk_points_(chunk_points),
      out_(std::move(out)) {
  PMKM_CHECK(chunk_points_ > 0);
  PMKM_CHECK(out_ != nullptr);
  out_->AddProducer();
}

Status MemoryScanOperator::Run() {
  struct Closer {
    PointChunkQueue* q;
    ~Closer() { q->CloseProducer(); }
  } closer{out_.get()};

  for (const GridBucket& cell : cells_) {
    if (CancelRequested()) return Status::Cancelled("run cancelled");
    ScopedSpan span(obs().trace, "scan.cell", "io");
    if (span.enabled()) span.AddArg("cell", cell.cell.ToString());
    const size_t n = cell.points.size();
    const uint32_t total = NumChunks(n, chunk_points_);
    uint32_t id = 0;
    for (size_t begin = 0; begin < n; begin += chunk_points_) {
      const size_t end = std::min(n, begin + chunk_points_);
      PointChunk msg;
      msg.cell = cell.cell;
      msg.partition_id = id++;
      msg.total_partitions = total;
      msg.points = cell.points.Slice(begin, end);
      const size_t rows = msg.points.size();
      const size_t bytes = PointBytes(rows, msg.points.dim());
      const Stopwatch push_watch;
      const bool pushed = out_->Push(std::move(msg));
      mutable_stats().queue_wait_seconds += push_watch.ElapsedSeconds();
      if (!pushed) {
        return Status::Cancelled("scan output queue cancelled");
      }
      mutable_stats().rows_in += rows;
      mutable_stats().bytes_in += bytes;
      mutable_stats().rows_out += rows;
      mutable_stats().bytes_out += bytes;
      TickProgress();
      PublishLive();
    }
  }
  return Status::OK();
}

void MemoryScanOperator::Abort() { out_->Cancel(); }

// ---------------------------------------------------------------------------
// PartialKMeansOperator

PartialKMeansOperator::PartialKMeansOperator(
    const KMeansConfig& config, std::shared_ptr<PointChunkQueue> in,
    std::shared_ptr<CentroidQueue> out, std::string name,
    RetryPolicy retry)
    : Operator(std::move(name)),
      partial_(config),
      in_(std::move(in)),
      out_(std::move(out)),
      retry_(retry) {
  PMKM_CHECK(in_ != nullptr && out_ != nullptr);
  out_->AddProducer();
}

Status PartialKMeansOperator::Run() {
  struct Closer {
    CentroidQueue* q;
    ~Closer() { q->CloseProducer(); }
  } closer{out_.get()};

  const LloydConfig& lloyd = partial_.config().lloyd;
  mutable_stats().kernel =
      (lloyd.kernel != nullptr ? *lloyd.kernel : DefaultKernel()).name();

  for (;;) {
    const Stopwatch pop_watch;
    std::optional<PointChunk> chunk = in_->Pop();
    mutable_stats().queue_wait_seconds += pop_watch.ElapsedSeconds();
    if (!chunk.has_value()) {
      if (in_->cancelled()) {
        return Status::Cancelled("partial input queue cancelled");
      }
      return Status::OK();  // end of stream
    }
    if (chunk->dropped) {
      // Forward the quarantine marker to the merge.
      CentroidMessage msg;
      msg.cell = chunk->cell;
      msg.dropped = true;
      msg.drop_reason = std::move(chunk->drop_reason);
      if (!out_->Push(std::move(msg))) {
        return Status::Cancelled("partial output queue cancelled");
      }
      TickProgress();
      continue;
    }
    // Injected stall (watchdog testing): sleep cancellably so an aborted
    // pipeline still joins promptly.
    if (uint64_t stall_ms = FaultRegistry::Global().StallMs("op.stall");
        stall_ms > 0) {
      const Stopwatch stall_watch;
      while (!in_->cancelled() &&
             stall_watch.ElapsedMillis() < static_cast<double>(stall_ms)) {
        // Fault-injected stall (op.stall), not a latency hack.
        std::this_thread::sleep_for(  // pmkm-lint: allow(sleep)
            std::chrono::milliseconds(1));
      }
    }
    mutable_stats().rows_in += chunk->points.size();
    mutable_stats().bytes_in +=
        PointBytes(chunk->points.size(), chunk->points.dim());
    // Partition id feeds the seed derivation so clones stay reproducible
    // regardless of which clone picks up which chunk.
    const uint64_t tag =
        (static_cast<uint64_t>(
             static_cast<uint32_t>(chunk->cell.lat_index))
         << 32) ^
        static_cast<uint32_t>(chunk->cell.lon_index) ^
        (static_cast<uint64_t>(chunk->partition_id) << 17);
    ScopedSpan span(obs().trace, "partial.chunk", "compute");
    if (span.enabled()) {
      span.AddArg("cell", chunk->cell.ToString());
      span.AddArg("partition", static_cast<int64_t>(chunk->partition_id));
      span.AddArg("points", chunk->points.size());
    }
    const Stopwatch chunk_watch;
    auto compute = [&]() -> Result<PartialResult> {
      PMKM_FAULT_POINT("op.partial");
      return partial_.Cluster(chunk->points, tag);
    };
    size_t retries_used = 0;
    Result<PartialResult> result =
        failure_policy() == FailurePolicy::kFailFast
            ? compute()
            : RetryCall(retry_, tag, compute, &retries_used);
    mutable_stats().retries += retries_used;
    if (!result.ok()) {
      if (failure_policy() == FailurePolicy::kSkipAndContinue) {
        ++chunks_dropped_;
        ++mutable_stats().items_dropped;
        PMKM_LOG(Warning) << name() << ": dropping chunk "
                          << chunk->partition_id << " of cell "
                          << chunk->cell.ToString() << ": "
                          << result.status();
        CentroidMessage msg;
        msg.cell = chunk->cell;
        msg.dropped = true;
        msg.drop_reason = result.status().ToString();
        if (!out_->Push(std::move(msg))) {
          return Status::Cancelled("partial output queue cancelled");
        }
        TickProgress();
        continue;
      }
      return result.status();
    }
    mutable_stats().kmeans_iterations += result->iterations;
    mutable_stats().kmeans_restarts += partial_.config().restarts;
    RecordRollingUs(obs().metrics, "partial.chunk_us",
                    chunk_watch.ElapsedSeconds());
    CentroidMessage msg;
    msg.cell = chunk->cell;
    msg.partition_id = chunk->partition_id;
    msg.total_partitions = chunk->total_partitions;
    msg.centroids = std::move(result->centroids);
    msg.partial_sse = result->sse;
    msg.partial_iterations = result->iterations;
    msg.input_points = result->input_points;
    const size_t out_rows = msg.centroids.size();
    const size_t out_bytes = WeightedBytes(out_rows, msg.centroids.dim());
    const Stopwatch push_watch;
    const bool pushed = out_->Push(std::move(msg));
    mutable_stats().queue_wait_seconds += push_watch.ElapsedSeconds();
    if (!pushed) {
      return Status::Cancelled("partial output queue cancelled");
    }
    mutable_stats().rows_out += out_rows;
    mutable_stats().bytes_out += out_bytes;
    ++chunks_processed_;
    TickProgress();
    PublishLive();
  }
}

void PartialKMeansOperator::Abort() {
  in_->Cancel();
  out_->Cancel();
}

// ---------------------------------------------------------------------------
// MergeKMeansOperator

MergeKMeansOperator::MergeKMeansOperator(const MergeKMeansConfig& config,
                                         std::shared_ptr<CentroidQueue> in,
                                         bool allow_incomplete)
    : Operator("merge-kmeans"),
      merger_(config),
      in_(std::move(in)),
      allow_incomplete_(allow_incomplete) {
  PMKM_CHECK(in_ != nullptr);
}

Status MergeKMeansOperator::MergeCell(GridCellId cell) {
  PendingCell& pc = pending_.at(cell);
  WeightedDataset pooled(pc.dim);
  for (const auto& [id, part] : pc.parts) {
    pooled.AppendAll(part);
  }
  ScopedSpan span(obs().trace, "merge.cell", "compute");
  if (span.enabled()) {
    span.AddArg("cell", cell.ToString());
    span.AddArg("pooled_centroids", pooled.size());
  }
  const Stopwatch watch;
  PMKM_ASSIGN_OR_RETURN(ClusteringModel model, merger_.Merge(pooled));
  RecordRollingUs(obs().metrics, "merge.cell_us", watch.ElapsedSeconds());
  mutable_stats().kmeans_iterations += model.iterations;
  mutable_stats().kmeans_restarts += merger_.config().restarts;
  mutable_stats().rows_out += model.centroids.size();
  mutable_stats().bytes_out +=
      WeightedBytes(model.centroids.size(), model.centroids.dim());
  CellClustering result;
  result.cell = cell;
  result.pooled_centroids = pooled.size();
  result.input_points = pc.input_points;
  result.merge_seconds = watch.ElapsedSeconds();
  result.model = std::move(model);
  // Journal before publishing: a cell is either durable in the checkpoint
  // or will be recomputed on resume — never silently half-remembered.
  if (checkpoint_ != nullptr && !checkpoint_failed_) {
    const Status st = checkpoint_->AppendCellComplete(result);
    if (!st.ok()) {
      if (failure_policy() == FailurePolicy::kFailFast) return st;
      // Tolerant policies: the run is more valuable than its journal.
      // Keep clustering, but stop pretending progress is durable.
      PMKM_LOG(Warning) << "checkpoint append failed for "
                        << cell.ToString()
                        << "; disabling checkpointing for this run: " << st;
      checkpoint_failed_ = true;
    }
  }
  results_[cell] = std::move(result);
  pending_.erase(cell);
  return Status::OK();
}

Status MergeKMeansOperator::Run() {
  const LloydConfig& lloyd = merger_.config().lloyd;
  mutable_stats().kernel =
      (lloyd.kernel != nullptr ? *lloyd.kernel : DefaultKernel()).name();
  for (;;) {
    const Stopwatch pop_watch;
    std::optional<CentroidMessage> msg = in_->Pop();
    mutable_stats().queue_wait_seconds += pop_watch.ElapsedSeconds();
    if (!msg.has_value()) {
      if (in_->cancelled()) {
        return Status::Cancelled("merge input queue cancelled");
      }
      break;  // end of stream
    }
    TickProgress();
    if (msg->dropped) {
      // Quarantine: discard everything about this cell, even a clustering
      // that already completed from (possibly corrupt) earlier partitions.
      skipped_.insert_or_assign(
          msg->cell, msg->drop_reason.empty() ? "dropped upstream"
                                              : msg->drop_reason);
      pending_.erase(msg->cell);
      results_.erase(msg->cell);
      ++mutable_stats().items_dropped;
      continue;
    }
    if (skipped_.count(msg->cell) > 0) continue;  // stragglers
    mutable_stats().rows_in += msg->centroids.size();
    mutable_stats().bytes_in +=
        WeightedBytes(msg->centroids.size(), msg->centroids.dim());
    PendingCell& pc = pending_[msg->cell];
    if (!pc.initialized) {
      pc.dim = msg->centroids.dim();
      pc.expected = msg->total_partitions;
      pc.initialized = true;
    } else if (pc.expected != msg->total_partitions) {
      return Status::Internal("inconsistent partition count for cell " +
                              msg->cell.ToString());
    }
    if (!pc.parts.emplace(msg->partition_id, std::move(msg->centroids))
             .second) {
      return Status::Internal("duplicate partition " +
                              std::to_string(msg->partition_id) +
                              " for cell " + msg->cell.ToString());
    }
    pc.input_points += msg->input_points;
    if (pc.parts.size() == pc.expected) {
      PMKM_RETURN_NOT_OK(MergeCell(msg->cell));
      PublishLive();
    }
  }
  if (!pending_.empty()) {
    if (!allow_incomplete_) {
      return Status::Internal(
          "stream ended with " + std::to_string(pending_.size()) +
          " incomplete cell(s)");
    }
    for (const auto& [cell, pc] : pending_) {
      skipped_.insert_or_assign(
          cell, "incomplete at end of stream (" +
                    std::to_string(pc.parts.size()) + "/" +
                    std::to_string(pc.expected) + " partitions arrived)");
      ++mutable_stats().items_dropped;
      PMKM_LOG(Warning) << "merge: skipping incomplete cell "
                        << cell.ToString();
    }
    pending_.clear();
  }
  return Status::OK();
}

void MergeKMeansOperator::Abort() { in_->Cancel(); }

}  // namespace pmkm
