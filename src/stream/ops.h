// Concrete operators of the partial/merge k-means query plan (paper Fig. 5):
// scan → cloned partial k-means → merge k-means.
//
// Resilience: each operator honors its FailurePolicy (operator.h). The scan
// retries transient bucket-read failures with deterministic backoff and,
// under kSkipAndContinue, quarantines corrupt buckets (emitting a dropped
// marker so the merge discards any partitions already streamed). Partial
// operators retry failed chunks and can drop them; the merge tolerates
// incomplete cells at end-of-stream when configured, recording them as
// skipped instead of failing the run.

#ifndef PMKM_STREAM_OPS_H_
#define PMKM_STREAM_OPS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/merge.h"
#include "cluster/partial.h"
#include "common/retry.h"
#include "data/io.h"
#include "stream/message.h"
#include "stream/operator.h"
#include "stream/queue.h"

namespace pmkm {

class CheckpointWriter;  // stream/checkpoint.h

using PointChunkQueue = BoundedBlockingQueue<PointChunk>;
using CentroidQueue = BoundedBlockingQueue<CentroidMessage>;

/// A bucket the scan gave up on: skipped, logged, and recorded here.
struct QuarantinedBucket {
  std::string path;
  GridCellId cell;
  bool cell_known = false;  // false if the failure preceded the header
  Status error;
};

/// Scan operator: streams grid-bucket files chunk-by-chunk into the point
/// queue, honoring the one-look constraint (each bucket is read exactly
/// once, `chunk_points` rows at a time — the memory budget of a partial
/// operator).
///
/// Failure handling by policy:
///   kFailFast        — first read error aborts the scan (legacy).
///   kRetryOperator   — the scan is restartable: it resumes from its last
///                      completed bucket/partition when the executor
///                      restarts it (already-emitted partitions are never
///                      re-emitted).
///   kSkipAndContinue — read errors are retried per `retry` policy, then
///                      the bucket is quarantined and scanning continues.
class ScanOperator : public Operator {
 public:
  /// `paths`: bucket files to scan. `chunk_points`: partition size N' (> 0).
  /// The operator registers itself as a producer of `out` at construction.
  /// `retry` governs per-bucket re-reads under kSkipAndContinue.
  ScanOperator(std::vector<std::string> paths, size_t chunk_points,
               std::shared_ptr<PointChunkQueue> out,
               RetryPolicy retry = RetryPolicy{});

  Status Run() override;
  void Abort() override;
  bool SupportsRestart() const override { return true; }
  Status PrepareRestart() override { return Status::OK(); }
  void Finish() override;

  size_t chunks_emitted() const { return chunks_emitted_; }

  /// Buckets quarantined under kSkipAndContinue.
  const std::vector<QuarantinedBucket>& quarantined() const {
    return quarantined_;
  }

  /// Read retries absorbed (per-bucket Retrier grants).
  size_t io_retries() const { return io_retries_; }

 private:
  // Emits one bucket, resuming past partitions_emitted_ already-pushed
  // partitions (used both for in-bucket retry and executor restarts).
  Status EmitBucketOnce(const std::string& path);
  Status EmitBucketWithRetry(const std::string& path);
  void CloseOutputOnce();

  std::vector<std::string> paths_;
  size_t chunk_points_;
  std::shared_ptr<PointChunkQueue> out_;
  RetryPolicy retry_;
  size_t chunks_emitted_ = 0;
  size_t io_retries_ = 0;
  bool output_closed_ = false;

  // Resume state (survives Run() attempts for restartable execution).
  size_t bucket_index_ = 0;
  uint32_t partitions_emitted_ = 0;
  GridCellId current_cell_;
  bool cell_known_ = false;

  std::vector<QuarantinedBucket> quarantined_;
};

/// In-memory scan: partitions already-materialized cells (used by tests and
/// by experiments that pre-generate cells). Same chunking contract as
/// ScanOperator.
class MemoryScanOperator : public Operator {
 public:
  MemoryScanOperator(std::vector<GridBucket> cells, size_t chunk_points,
                     std::shared_ptr<PointChunkQueue> out);

  Status Run() override;
  void Abort() override;

 private:
  std::vector<GridBucket> cells_;
  size_t chunk_points_;
  std::shared_ptr<PointChunkQueue> out_;
};

/// Partial k-means operator: one clone. Pops point chunks, clusters them,
/// pushes weighted centroid messages. Instantiate several with the same
/// queues to clone (paper §3.4 option 1).
///
/// Failure handling by policy: under kRetryOperator and kSkipAndContinue a
/// failed chunk is retried per `retry`; if retries are exhausted,
/// kSkipAndContinue drops the chunk (emitting a quarantine marker so the
/// merge discards the whole cell) while kRetryOperator fails the pipeline.
/// Fault sites: "op.partial" (error before clustering a chunk), "op.stall"
/// (cancellable stall, for watchdog tests).
class PartialKMeansOperator : public Operator {
 public:
  PartialKMeansOperator(const KMeansConfig& config,
                        std::shared_ptr<PointChunkQueue> in,
                        std::shared_ptr<CentroidQueue> out,
                        std::string name = "partial-kmeans",
                        RetryPolicy retry = RetryPolicy{});

  Status Run() override;
  void Abort() override;

  size_t chunks_processed() const { return chunks_processed_; }

  /// Chunks dropped (cell quarantined) under kSkipAndContinue.
  size_t chunks_dropped() const { return chunks_dropped_; }

 private:
  PartialKMeans partial_;
  std::shared_ptr<PointChunkQueue> in_;
  std::shared_ptr<CentroidQueue> out_;
  RetryPolicy retry_;
  size_t chunks_processed_ = 0;
  size_t chunks_dropped_ = 0;
};

/// Final clustering of one grid cell, produced by the merge operator.
struct CellClustering {
  GridCellId cell;
  ClusteringModel model;
  size_t pooled_centroids = 0;
  size_t input_points = 0;
  double merge_seconds = 0.0;
};

/// Merge k-means operator: the consumer root of the plan. Buffers weighted
/// centroids per cell; when a cell's partitions are complete, runs the
/// collective merge. Results are available via results() after the pipeline
/// finishes.
///
/// With `allow_incomplete` (graceful-degradation mode) cells that are still
/// incomplete at end-of-stream — or explicitly dropped upstream — are
/// recorded in skipped_cells() instead of failing the run.
class MergeKMeansOperator : public Operator {
 public:
  MergeKMeansOperator(const MergeKMeansConfig& config,
                      std::shared_ptr<CentroidQueue> in,
                      bool allow_incomplete = false);

  Status Run() override;
  void Abort() override;

  const std::map<GridCellId, CellClustering>& results() const {
    return results_;
  }

  /// Cells discarded in degradation mode, with a human-readable reason.
  const std::map<GridCellId, std::string>& skipped_cells() const {
    return skipped_;
  }

  /// Attaches a checkpoint writer: every completed cell is journaled
  /// before it is published into results(). Null (the default) disables
  /// checkpointing. Must be set before the executor starts.
  void set_checkpoint(CheckpointWriter* checkpoint) {
    checkpoint_ = checkpoint;
  }

  /// True if a checkpoint append failed mid-run and checkpointing was
  /// disabled for the rest of the run (non-failfast policies only).
  bool checkpoint_failed() const { return checkpoint_failed_; }

 private:
  Status MergeCell(GridCellId cell);

  MergeKMeans merger_;
  std::shared_ptr<CentroidQueue> in_;
  bool allow_incomplete_;
  CheckpointWriter* checkpoint_ = nullptr;
  bool checkpoint_failed_ = false;

  // Arrived centroid sets are buffered per partition id and pooled in
  // ascending id order at merge time, so the result is independent of the
  // arrival interleaving produced by cloned partial operators.
  struct PendingCell {
    std::map<uint32_t, WeightedDataset> parts;
    uint32_t expected = 0;
    size_t input_points = 0;
    size_t dim = 1;
    bool initialized = false;
  };
  std::map<GridCellId, PendingCell> pending_;
  std::map<GridCellId, CellClustering> results_;
  std::map<GridCellId, std::string> skipped_;
};

}  // namespace pmkm

#endif  // PMKM_STREAM_OPS_H_
