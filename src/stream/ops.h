// Concrete operators of the partial/merge k-means query plan (paper Fig. 5):
// scan → cloned partial k-means → merge k-means.

#ifndef PMKM_STREAM_OPS_H_
#define PMKM_STREAM_OPS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/merge.h"
#include "cluster/partial.h"
#include "data/io.h"
#include "stream/message.h"
#include "stream/operator.h"
#include "stream/queue.h"

namespace pmkm {

using PointChunkQueue = BoundedBlockingQueue<PointChunk>;
using CentroidQueue = BoundedBlockingQueue<CentroidMessage>;

/// Scan operator: streams grid-bucket files chunk-by-chunk into the point
/// queue, honoring the one-look constraint (each bucket is read exactly
/// once, `chunk_points` rows at a time — the memory budget of a partial
/// operator).
class ScanOperator : public Operator {
 public:
  /// `paths`: bucket files to scan. `chunk_points`: partition size N' (> 0).
  /// The operator registers itself as a producer of `out` at construction.
  ScanOperator(std::vector<std::string> paths, size_t chunk_points,
               std::shared_ptr<PointChunkQueue> out);

  Status Run() override;
  void Abort() override;

  size_t chunks_emitted() const { return chunks_emitted_; }

 private:
  std::vector<std::string> paths_;
  size_t chunk_points_;
  std::shared_ptr<PointChunkQueue> out_;
  size_t chunks_emitted_ = 0;
};

/// In-memory scan: partitions already-materialized cells (used by tests and
/// by experiments that pre-generate cells). Same chunking contract as
/// ScanOperator.
class MemoryScanOperator : public Operator {
 public:
  MemoryScanOperator(std::vector<GridBucket> cells, size_t chunk_points,
                     std::shared_ptr<PointChunkQueue> out);

  Status Run() override;
  void Abort() override;

 private:
  std::vector<GridBucket> cells_;
  size_t chunk_points_;
  std::shared_ptr<PointChunkQueue> out_;
};

/// Partial k-means operator: one clone. Pops point chunks, clusters them,
/// pushes weighted centroid messages. Instantiate several with the same
/// queues to clone (paper §3.4 option 1).
class PartialKMeansOperator : public Operator {
 public:
  PartialKMeansOperator(const KMeansConfig& config,
                        std::shared_ptr<PointChunkQueue> in,
                        std::shared_ptr<CentroidQueue> out,
                        std::string name = "partial-kmeans");

  Status Run() override;
  void Abort() override;

  size_t chunks_processed() const { return chunks_processed_; }

 private:
  PartialKMeans partial_;
  std::shared_ptr<PointChunkQueue> in_;
  std::shared_ptr<CentroidQueue> out_;
  size_t chunks_processed_ = 0;
};

/// Final clustering of one grid cell, produced by the merge operator.
struct CellClustering {
  GridCellId cell;
  ClusteringModel model;
  size_t pooled_centroids = 0;
  size_t input_points = 0;
  double merge_seconds = 0.0;
};

/// Merge k-means operator: the consumer root of the plan. Buffers weighted
/// centroids per cell; when a cell's partitions are complete, runs the
/// collective merge. Results are available via results() after the pipeline
/// finishes.
class MergeKMeansOperator : public Operator {
 public:
  MergeKMeansOperator(const MergeKMeansConfig& config,
                      std::shared_ptr<CentroidQueue> in);

  Status Run() override;
  void Abort() override;

  const std::map<GridCellId, CellClustering>& results() const {
    return results_;
  }

 private:
  Status MergeCell(GridCellId cell);

  MergeKMeans merger_;
  std::shared_ptr<CentroidQueue> in_;

  // Arrived centroid sets are buffered per partition id and pooled in
  // ascending id order at merge time, so the result is independent of the
  // arrival interleaving produced by cloned partial operators.
  struct PendingCell {
    std::map<uint32_t, WeightedDataset> parts;
    uint32_t expected = 0;
    size_t input_points = 0;
    size_t dim = 1;
    bool initialized = false;
  };
  std::map<GridCellId, PendingCell> pending_;
  std::map<GridCellId, CellClustering> results_;
};

}  // namespace pmkm

#endif  // PMKM_STREAM_OPS_H_
