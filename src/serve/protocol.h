// The pmkm serve wire protocol: version-negotiated, CRC-framed binary
// messages over a byte stream (unix-domain or loopback TCP socket).
//
// Handshake — each side sends an 8-byte hello as its first bytes:
//
//   [u32 magic "PMKS"][u32 protocol_version]        (little-endian)
//
// The effective version is min(local, peer); a peer below
// kMinProtocolVersion (or with a bad magic) is rejected and the
// connection closed. Codecs take the effective version, so a v2 client
// talks to a v1 server by simply not sending the v2 fields, and a v1
// client's frames decode on a v2 server with the v2 fields defaulted.
//
// Frames — every message after the handshake uses the journal's frame
// discipline (data/manifest.h): length prefix, type tag, and a CRC32C
// trailer so a torn or corrupted stream is detected, never trusted:
//
//   [u32 payload_len][u32 type][payload bytes][u32 crc32c(type || payload)]
//
// payload_len covers the payload only and is capped at kMaxFramePayload;
// a corrupt length can therefore never drive a huge allocation. The
// decoder is incremental and socket-free — feed it a buffer, it returns
// a frame, "need more bytes", or an error — so golden-vector tests and
// the fuzz harness exercise exactly the bytes a socket would deliver.
//
// Requests carry one frame each (kSubmitJob, kJobStatus, kFetchModel,
// kCancelJob, kListJobs, kPing); every reply is one kReply frame wrapping
// a Status (code + message) plus a request-specific body. Model payloads
// reuse the checkpoint cell codec (EncodeCellComplete), which round-trips
// doubles bitwise — the foundation of the local/remote byte-identity
// guarantee.
//
// Unknown trailing bytes in a payload are ignored, which is what lets a
// newer minor version append fields.

#ifndef PMKM_SERVE_PROTOCOL_H_
#define PMKM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/service.h"

namespace pmkm {
namespace serve {

/// "PMKS" read as a little-endian u32.
inline constexpr uint32_t kProtocolMagic = 0x534b4d50u;

/// Current protocol version. v1: framing + all six request types.
/// v2: JobSpec carries run_id and client.
inline constexpr uint32_t kProtocolVersion = 2;

/// Oldest version this build still speaks.
inline constexpr uint32_t kMinProtocolVersion = 1;

/// Frame payload cap, matching the journal's record cap: a corrupt
/// length field must never drive the allocation.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// Fixed hello size: magic + version.
inline constexpr size_t kHelloBytes = 8;

/// Frame overhead: payload_len + type + crc.
inline constexpr size_t kFrameFixedBytes = 12;

/// Message type tags. Requests are 1..99, replies 100+.
enum class FrameType : uint32_t {
  kPing = 1,
  kSubmitJob = 2,
  kJobStatus = 3,
  kFetchModel = 4,
  kCancelJob = 5,
  kListJobs = 6,
  kReply = 100,
};

struct Frame {
  uint32_t type = 0;
  std::vector<uint8_t> payload;
};

/// A decoded kReply frame: the call's Status plus the body the request
/// type defines (empty on failure).
struct Reply {
  Status status;
  std::vector<uint8_t> body;
};

// ---------------------------------------------------------------------------
// Handshake.

/// The 8-byte hello this build sends (magic + `version`).
std::vector<uint8_t> EncodeHello(uint32_t version);

/// Parses a peer hello; fails on short input or a bad magic. Returns the
/// peer's advertised version (unvalidated — pass to NegotiateVersion).
Result<uint32_t> DecodeHello(std::span<const uint8_t> bytes);

/// min(kProtocolVersion, peer_version), or FailedPrecondition when the
/// peer is older than kMinProtocolVersion.
Result<uint32_t> NegotiateVersion(uint32_t peer_version);

// ---------------------------------------------------------------------------
// Framing.

/// Wraps a payload into a wire frame (length, type, payload, CRC).
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 std::span<const uint8_t> payload);

/// Incremental decode: examines the front of `buffer`.
///   - complete valid frame  → the Frame; *consumed = its wire size
///   - prefix of a frame     → nullopt; *consumed = 0 (read more bytes)
///   - oversized length, CRC mismatch → error (connection is poisoned;
///     *consumed = 0)
Result<std::optional<Frame>> DecodeFrame(std::span<const uint8_t> buffer,
                                         size_t* consumed);

// ---------------------------------------------------------------------------
// Payload codecs. All integers little-endian; strings are
// [u32 len][bytes]; doubles are their IEEE-754 bit pattern as u64.

/// JobSpec → bytes at `version` (v1 omits run_id/client).
std::vector<uint8_t> EncodeJobSpec(const JobSpec& spec, uint32_t version);
Result<JobSpec> DecodeJobSpec(std::span<const uint8_t> payload,
                              uint32_t version);

std::vector<uint8_t> EncodeJobInfo(const JobInfo& info);
Result<JobInfo> DecodeJobInfo(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeJobList(const std::vector<JobInfo>& jobs);
Result<std::vector<JobInfo>> DecodeJobList(std::span<const uint8_t> payload);

/// Model set: [u32 cell_count] then per cell [u32 len][checkpoint cell
/// blob]. Bit-exact: DecodeCellComplete restores every double bitwise.
std::vector<uint8_t> EncodeModelSet(
    const std::map<GridCellId, CellClustering>& cells);
Result<std::map<GridCellId, CellClustering>> DecodeModelSet(
    std::span<const uint8_t> payload);

/// Bare u64 payload (job ids).
std::vector<uint8_t> EncodeU64(uint64_t value);
Result<uint64_t> DecodeU64(std::span<const uint8_t> payload);

/// Reply envelope: [u32 status_code][u32 msg_len][msg][body...].
std::vector<uint8_t> EncodeReply(const Status& status,
                                 std::span<const uint8_t> body);
Result<Reply> DecodeReply(std::span<const uint8_t> payload);

}  // namespace serve
}  // namespace pmkm

#endif  // PMKM_SERVE_PROTOCOL_H_
