#include "serve/remote_service.h"

#include <utility>

#include "serve/net.h"

namespace pmkm {
namespace serve {

RemoteService::~RemoteService() { Disconnect(); }

Status RemoteService::Connect(const std::string& endpoint) {
  MutexLock lock(mu_);
  if (fd_ >= 0) {
    return Status::FailedPrecondition("already connected");
  }
  PMKM_ASSIGN_OR_RETURN(const int fd, DialEndpoint(endpoint));
  // Hello exchange: send ours, read theirs, settle on min.
  const std::vector<uint8_t> hello = EncodeHello(kProtocolVersion);
  Status st = WriteAll(fd, hello);
  uint8_t peer_hello[kHelloBytes];
  if (st.ok()) st = ReadExact(fd, peer_hello);
  uint32_t peer_version = 0;
  if (st.ok()) {
    Result<uint32_t> decoded =
        DecodeHello(std::span<const uint8_t>(peer_hello, kHelloBytes));
    if (decoded.ok()) {
      peer_version = decoded.value();
    } else {
      st = decoded.error();
    }
  }
  if (st.ok()) {
    Result<uint32_t> negotiated = NegotiateVersion(peer_version);
    if (negotiated.ok()) {
      version_ = negotiated.value();
    } else {
      st = negotiated.error();
    }
  }
  if (!st.ok()) {
    CloseFd(fd);
    return st;
  }
  fd_ = fd;
  read_buffer_.clear();
  return Status::OK();
}

void RemoteService::Disconnect() {
  MutexLock lock(mu_);
  CloseFd(fd_);
  fd_ = -1;
  version_ = 0;
  read_buffer_.clear();
}

bool RemoteService::connected() const {
  MutexLock lock(mu_);
  return fd_ >= 0;
}

uint32_t RemoteService::negotiated_version() const {
  MutexLock lock(mu_);
  return version_;
}

Status RemoteService::Ping() {
  PMKM_ASSIGN_OR_RETURN(Reply reply, Call(FrameType::kPing, {}));
  return reply.status;
}

Result<uint64_t> RemoteService::SubmitJob(const JobSpec& spec) {
  std::vector<uint8_t> payload;
  {
    MutexLock lock(mu_);
    if (fd_ < 0) return Status::FailedPrecondition("not connected");
    payload = EncodeJobSpec(spec, version_);
  }
  PMKM_ASSIGN_OR_RETURN(Reply reply,
                        Call(FrameType::kSubmitJob, std::move(payload)));
  PMKM_RETURN_NOT_OK(reply.status);
  return DecodeU64(reply.body);
}

Result<JobInfo> RemoteService::JobStatus(uint64_t job_id) {
  PMKM_ASSIGN_OR_RETURN(
      Reply reply, Call(FrameType::kJobStatus, EncodeU64(job_id)));
  PMKM_RETURN_NOT_OK(reply.status);
  return DecodeJobInfo(reply.body);
}

Result<std::map<GridCellId, CellClustering>> RemoteService::FetchModel(
    uint64_t job_id) {
  PMKM_ASSIGN_OR_RETURN(
      Reply reply, Call(FrameType::kFetchModel, EncodeU64(job_id)));
  PMKM_RETURN_NOT_OK(reply.status);
  return DecodeModelSet(reply.body);
}

Status RemoteService::CancelJob(uint64_t job_id) {
  PMKM_ASSIGN_OR_RETURN(
      Reply reply, Call(FrameType::kCancelJob, EncodeU64(job_id)));
  return reply.status;
}

Result<std::vector<JobInfo>> RemoteService::ListJobs() {
  PMKM_ASSIGN_OR_RETURN(Reply reply, Call(FrameType::kListJobs, {}));
  PMKM_RETURN_NOT_OK(reply.status);
  return DecodeJobList(reply.body);
}

Result<Reply> RemoteService::Call(FrameType type,
                                  std::vector<uint8_t> payload) {
  MutexLock lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  Reply reply;
  const Status st = CallLocked(type, payload, &reply);
  if (!st.ok()) {
    // Transport failure: the stream position is unknowable, so poison
    // the connection rather than risk desynchronized frames.
    CloseFd(fd_);
    fd_ = -1;
    read_buffer_.clear();
    return st;
  }
  return reply;
}

Status RemoteService::CallLocked(FrameType type,
                                 const std::vector<uint8_t>& payload,
                                 Reply* reply) {
  PMKM_RETURN_NOT_OK(WriteAll(fd_, EncodeFrame(type, payload)));
  // Accumulate bytes until one complete frame decodes.
  uint8_t chunk[4096];
  while (true) {
    size_t consumed = 0;
    PMKM_ASSIGN_OR_RETURN(std::optional<Frame> frame,
                          DecodeFrame(read_buffer_, &consumed));
    if (frame.has_value()) {
      read_buffer_.erase(read_buffer_.begin(),
                         read_buffer_.begin() +
                             static_cast<ptrdiff_t>(consumed));
      if (frame->type != static_cast<uint32_t>(FrameType::kReply)) {
        return Status::IOError("protocol error: expected a reply frame, "
                               "got type " + std::to_string(frame->type));
      }
      PMKM_ASSIGN_OR_RETURN(*reply, DecodeReply(frame->payload));
      return Status::OK();
    }
    PMKM_ASSIGN_OR_RETURN(const size_t n, ReadSome(fd_, chunk));
    if (n == 0) {
      return Status::IOError("server closed the connection mid-reply");
    }
    read_buffer_.insert(read_buffer_.end(), chunk, chunk + n);
  }
}

}  // namespace serve
}  // namespace pmkm
