#include "serve/remote_service.h"

#include <utility>

#include "serve/net.h"

namespace pmkm {
namespace serve {

namespace {

// Dials `endpoint` and performs the hello exchange with NO locks held
// (network I/O must not run under mu_ — pmkm_ctxcheck rule
// no-block-under-lock). On success *out_fd/*out_version are the connected
// socket and the negotiated version; on failure the socket is closed.
Status DialAndHello(const std::string& endpoint, int* out_fd,
                    uint32_t* out_version) {
  PMKM_ASSIGN_OR_RETURN(const int fd, DialEndpoint(endpoint));
  // Hello exchange: send ours, read theirs, settle on min.
  const std::vector<uint8_t> hello = EncodeHello(kProtocolVersion);
  Status st = WriteAll(fd, hello);
  uint8_t peer_hello[kHelloBytes];
  if (st.ok()) st = ReadExact(fd, peer_hello);
  uint32_t peer_version = 0;
  if (st.ok()) {
    Result<uint32_t> decoded =
        DecodeHello(std::span<const uint8_t>(peer_hello, kHelloBytes));
    if (decoded.ok()) {
      peer_version = decoded.value();
    } else {
      st = decoded.error();
    }
  }
  if (st.ok()) {
    Result<uint32_t> negotiated = NegotiateVersion(peer_version);
    if (negotiated.ok()) {
      *out_version = negotiated.value();
    } else {
      st = negotiated.error();
    }
  }
  if (!st.ok()) {
    CloseFd(fd);
    return st;
  }
  *out_fd = fd;
  return Status::OK();
}

// One request/reply round trip on `fd` with NO locks held. The caller
// owns the session via busy_ and hands in the carry-over read buffer;
// on success `buffer` holds any bytes read past the reply frame.
Status Exchange(int fd, FrameType type, const std::vector<uint8_t>& payload,
                std::vector<uint8_t>* buffer, Reply* reply) {
  PMKM_RETURN_NOT_OK(WriteAll(fd, EncodeFrame(type, payload)));
  // Accumulate bytes until one complete frame decodes.
  uint8_t chunk[4096];
  while (true) {
    size_t consumed = 0;
    PMKM_ASSIGN_OR_RETURN(std::optional<Frame> frame,
                          DecodeFrame(*buffer, &consumed));
    if (frame.has_value()) {
      buffer->erase(buffer->begin(),
                    buffer->begin() + static_cast<ptrdiff_t>(consumed));
      if (frame->type != static_cast<uint32_t>(FrameType::kReply)) {
        return Status::IOError("protocol error: expected a reply frame, "
                               "got type " + std::to_string(frame->type));
      }
      PMKM_ASSIGN_OR_RETURN(*reply, DecodeReply(frame->payload));
      return Status::OK();
    }
    PMKM_ASSIGN_OR_RETURN(const size_t n, ReadSome(fd, chunk));
    if (n == 0) {
      return Status::IOError("server closed the connection mid-reply");
    }
    buffer->insert(buffer->end(), chunk, chunk + n);
  }
}

}  // namespace

RemoteService::~RemoteService() { Disconnect(); }

Status RemoteService::Connect(const std::string& endpoint) {
  {
    MutexLock lock(mu_);
    // Reserve the session before dialing: busy_ keeps a concurrent
    // Connect/Call/Disconnect off fd_ while the handshake runs off-lock.
    while (busy_) io_done_.Wait(mu_);
    if (fd_ >= 0) {
      return Status::FailedPrecondition("already connected");
    }
    busy_ = true;
  }
  int fd = -1;
  uint32_t version = 0;
  const Status st = DialAndHello(endpoint, &fd, &version);
  MutexLock lock(mu_);
  busy_ = false;
  io_done_.NotifyAll();
  if (!st.ok()) return st;
  fd_ = fd;
  version_ = version;
  read_buffer_.clear();
  return Status::OK();
}

void RemoteService::Disconnect() {
  MutexLock lock(mu_);
  // An in-flight exchange owns fd_ with mu_ released; closing now could
  // recycle the descriptor under it. Wait the exchange out — exactly what
  // Disconnect did when exchanges held mu_ throughout, minus the lock.
  while (busy_) io_done_.Wait(mu_);
  CloseFd(fd_);
  fd_ = -1;
  version_ = 0;
  read_buffer_.clear();
}

bool RemoteService::connected() const {
  MutexLock lock(mu_);
  return fd_ >= 0;
}

uint32_t RemoteService::negotiated_version() const {
  MutexLock lock(mu_);
  return version_;
}

Status RemoteService::Ping() {
  PMKM_ASSIGN_OR_RETURN(Reply reply, Call(FrameType::kPing, {}));
  return reply.status;
}

Result<uint64_t> RemoteService::SubmitJob(const JobSpec& spec) {
  std::vector<uint8_t> payload;
  {
    MutexLock lock(mu_);
    if (fd_ < 0) return Status::FailedPrecondition("not connected");
    payload = EncodeJobSpec(spec, version_);
  }
  PMKM_ASSIGN_OR_RETURN(Reply reply,
                        Call(FrameType::kSubmitJob, std::move(payload)));
  PMKM_RETURN_NOT_OK(reply.status);
  return DecodeU64(reply.body);
}

Result<JobInfo> RemoteService::JobStatus(uint64_t job_id) {
  PMKM_ASSIGN_OR_RETURN(
      Reply reply, Call(FrameType::kJobStatus, EncodeU64(job_id)));
  PMKM_RETURN_NOT_OK(reply.status);
  return DecodeJobInfo(reply.body);
}

Result<std::map<GridCellId, CellClustering>> RemoteService::FetchModel(
    uint64_t job_id) {
  PMKM_ASSIGN_OR_RETURN(
      Reply reply, Call(FrameType::kFetchModel, EncodeU64(job_id)));
  PMKM_RETURN_NOT_OK(reply.status);
  return DecodeModelSet(reply.body);
}

Status RemoteService::CancelJob(uint64_t job_id) {
  PMKM_ASSIGN_OR_RETURN(
      Reply reply, Call(FrameType::kCancelJob, EncodeU64(job_id)));
  return reply.status;
}

Result<std::vector<JobInfo>> RemoteService::ListJobs() {
  PMKM_ASSIGN_OR_RETURN(Reply reply, Call(FrameType::kListJobs, {}));
  PMKM_RETURN_NOT_OK(reply.status);
  return DecodeJobList(reply.body);
}

Result<Reply> RemoteService::Call(FrameType type,
                                  std::vector<uint8_t> payload) {
  int fd = -1;
  std::vector<uint8_t> buffer;
  {
    MutexLock lock(mu_);
    // Waiting on io_done_ releases mu_ while parked; the socket round
    // trip below then runs with no lock held at all.
    while (busy_) io_done_.Wait(mu_);
    if (fd_ < 0) return Status::FailedPrecondition("not connected");
    busy_ = true;
    fd = fd_;
    buffer = std::move(read_buffer_);
    read_buffer_.clear();
  }
  Reply reply;
  const Status st = Exchange(fd, type, payload, &buffer, &reply);
  MutexLock lock(mu_);
  // busy_ was ours the whole time, so fd_ is still the fd we used.
  busy_ = false;
  io_done_.NotifyAll();
  if (!st.ok()) {
    // Transport failure: the stream position is unknowable, so poison
    // the connection rather than risk desynchronized frames.
    CloseFd(fd_);
    fd_ = -1;
    read_buffer_.clear();
    return st;
  }
  read_buffer_ = std::move(buffer);
  return reply;
}

}  // namespace serve
}  // namespace pmkm
