// ServeDaemon: hosts a LocalService behind the serve wire protocol. The
// accept loop hands each connection to a bounded handler pool; a handler
// performs the hello exchange, then serves request/reply frames until the
// client hangs up. One connection = one session: the negotiated version
// is per-session state, and a corrupt frame poisons only that session.
//
// Graceful drain (the SIGTERM path wired up in tools/pmkm_serve.cc):
// BeginDrain() stops job admission — in-flight and queued jobs keep
// running, and existing *and new* connections still get status/fetch/
// cancel service so clients can collect their results — then
// DrainAndStop() waits for the last accepted job, closes the listener
// and joins everything. An accepted job is never lost to a shutdown.

#ifndef PMKM_SERVE_DAEMON_H_
#define PMKM_SERVE_DAEMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "serve/local_service.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace pmkm {

class ThreadPool;

namespace serve {

struct DaemonOptions {
  /// Where to listen: "unix:/path/to.sock" or "127.0.0.1:port"
  /// (port 0 = ephemeral; read the result from bound_endpoint()).
  std::string endpoint = "127.0.0.1:0";

  /// Job execution (workers, admission bounds, budgets, debug server).
  LocalServiceOptions service;

  /// Concurrent client connections served; further connections queue in
  /// the accept backlog.
  size_t num_handler_threads = 4;

  /// Per-socket-op timeout for client connections. Generous because a
  /// client may legitimately idle between polls; 0 disables.
  int io_timeout_ms = 60000;
};

class ServeDaemon {
 public:
  /// Out of line: members hold a unique_ptr to the forward-declared
  /// ThreadPool, so construction/destruction needs the complete type.
  ServeDaemon();
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds the endpoint, starts the service workers, the handler pool
  /// and the accept thread.
  Status Start(const DaemonOptions& options) PMKM_EXCLUDES(mu_);

  /// Stops job admission; everything else keeps serving. Idempotent.
  void BeginDrain();

  /// Waits for all accepted jobs to finish, then closes the listener,
  /// drains the handlers and joins. Idempotent with Stop().
  void DrainAndStop() PMKM_EXCLUDES(mu_);

  /// Immediate shutdown: closes the listener and joins handlers without
  /// waiting for queued jobs (their state is simply dropped with the
  /// process). Prefer BeginDrain + DrainAndStop.
  void Stop() PMKM_EXCLUDES(mu_);

  /// The re-dialable endpoint actually bound (ephemeral port resolved).
  const std::string& bound_endpoint() const { return bound_endpoint_; }

  /// The hosted service (valid after Start), e.g. for tests to submit
  /// in-process or to mount extra introspection.
  LocalService* service() { return service_.get(); }

 private:
  void AcceptLoop();
  // Runs on the bounded handler pool; all socket I/O inside is bounded by
  // options_.io_timeout_ms (SO_RCVTIMEO/SO_SNDTIMEO, set in AcceptLoop).
  void HandleConnection(int fd) PMKM_BOUNDED_HANDLER;
  /// One request frame → one reply frame, dispatched to the service.
  std::vector<uint8_t> Dispatch(const Frame& request, uint32_t version);

  DaemonOptions options_;
  std::string bound_endpoint_;
  std::unique_ptr<LocalService> service_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;

  mutable Mutex mu_;
  bool running_ PMKM_GUARDED_BY(mu_) = false;
  int listen_fd_ PMKM_GUARDED_BY(mu_) = -1;
};

}  // namespace serve
}  // namespace pmkm

#endif  // PMKM_SERVE_DAEMON_H_
