// LocalService: the in-process ClusterService. Jobs land in a bounded
// admission queue, a small worker pool drains it, and each job runs the
// engine through PipelineBuilder under its own FailurePolicy supervision
// and cancel token. This is both the embedded backend for tools
// (pmkm_cluster without --server) and the execution core the pmkm_serve
// daemon hosts.
//
// Admission control happens at SubmitJob: a full queue or a client over
// its per-client cap is rejected with FailedPrecondition *before* the job
// exists, so a rejected submit never consumes a job id or memory. The
// requested memory/core budgets are clamped into the service's own
// ResourceModel, which is what keeps N concurrent jobs inside one
// process's budget.
//
// Graceful drain (SIGTERM path): BeginDrain() atomically stops admission
// — every later SubmitJob is rejected — while queued and running jobs
// keep executing; Drain() blocks until the last accepted job reaches a
// terminal state. An accepted job is therefore never lost to a shutdown,
// which the serve-smoke CI job verifies end to end.

#ifndef PMKM_SERVE_LOCAL_SERVICE_H_
#define PMKM_SERVE_LOCAL_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "serve/service.h"
#include "stream/plan.h"

namespace pmkm {

class MetricsRegistry;
class TraceRecorder;

namespace obs {
class DebugServer;
}  // namespace obs

namespace serve {

struct LocalServiceOptions {
  /// Concurrent jobs (worker threads). Each job internally parallelizes
  /// per its plan, so a small number is usually right.
  size_t num_workers = 2;

  /// Admission bound: jobs waiting for a worker. Submits beyond it are
  /// rejected, pushing back-pressure to clients instead of growing an
  /// unbounded queue.
  size_t max_queued_jobs = 16;

  /// Per-client cap on live (queued + running) jobs; 0 disables.
  /// Clients are identified by JobSpec::client ("" = anonymous, which is
  /// capped like any other client).
  size_t max_jobs_per_client = 4;

  /// Finished jobs kept for JobStatus/FetchModel before the oldest is
  /// evicted. Evicted ids answer NotFound.
  size_t finished_retention = 64;

  /// Ceiling on what a job may ask for: per-operator memory and cores
  /// from the spec are clamped to this budget. Zero (the default here,
  /// unlike ResourceModel's own defaults) means no ceiling on that axis.
  ResourceModel budget{0, 0};

  /// Optional live introspection: each running job publishes into this
  /// server's RunBoard (/runz, /statusz). Not owned; must outlive the
  /// service.
  obs::DebugServer* debug_server = nullptr;

  /// Optional shared observability sinks wired into every job's run
  /// (PipelineBuilder::WithMetrics/WithTrace). Not owned; concurrent
  /// jobs record into the same registry/recorder.
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
};

class LocalService : public ClusterService {
 public:
  explicit LocalService(LocalServiceOptions options);

  /// Drains (keeping accepted jobs, as Shutdown documents) and joins.
  ~LocalService() override;

  LocalService(const LocalService&) = delete;
  LocalService& operator=(const LocalService&) = delete;

  Result<uint64_t> SubmitJob(const JobSpec& spec) override
      PMKM_EXCLUDES(mu_);
  Result<JobInfo> JobStatus(uint64_t job_id) override PMKM_EXCLUDES(mu_);
  Result<std::map<GridCellId, CellClustering>> FetchModel(
      uint64_t job_id) override PMKM_EXCLUDES(mu_);
  Status CancelJob(uint64_t job_id) override PMKM_EXCLUDES(mu_);
  Result<std::vector<JobInfo>> ListJobs() override PMKM_EXCLUDES(mu_);

  /// Condition-variable wait instead of the base class's polling.
  Result<JobInfo> AwaitJob(uint64_t job_id, uint64_t timeout_ms) override
      PMKM_EXCLUDES(mu_);

  /// Stops admission permanently. Idempotent; queued/running jobs are
  /// unaffected.
  void BeginDrain() PMKM_EXCLUDES(mu_);

  /// Blocks until no job is queued or running. Call BeginDrain() first
  /// or new submissions can extend the wait indefinitely.
  void Drain() PMKM_EXCLUDES(mu_);

  /// BeginDrain + Drain + join the workers. Called by the destructor.
  void Shutdown() PMKM_EXCLUDES(mu_);

  bool draining() const PMKM_EXCLUDES(mu_);

  /// Full engine result (operator stats, run report, queue accounting)
  /// of a kDone job. LocalService-specific: the wire protocol ships only
  /// models and JobInfo, so remote clients don't get this.
  Result<StreamRunResult> RunResult(uint64_t job_id) PMKM_EXCLUDES(mu_);

  /// Live job table as JSON (the daemon mounts this at /jobz).
  std::string JobsJson() PMKM_EXCLUDES(mu_);

 private:
  struct Job {
    JobSpec spec;
    JobInfo info;
    /// Cooperative cancel token handed to the engine via WithCancelToken;
    /// stable address because jobs live behind unique_ptr.
    std::atomic<bool> cancel{false};
    /// Engine output, populated on kDone.
    StreamRunResult result;
  };

  void WorkerLoop();
  void RunJob(Job* job);
  Job* FindJobLocked(uint64_t job_id) PMKM_REQUIRES(mu_);
  void EvictFinishedLocked() PMKM_REQUIRES(mu_);
  size_t LiveJobsForClientLocked(const std::string& client)
      PMKM_REQUIRES(mu_);

  const LocalServiceOptions options_;

  mutable Mutex mu_;
  CondVar work_available_ PMKM_GUARDED_BY(mu_);
  CondVar jobs_changed_ PMKM_GUARDED_BY(mu_);
  bool draining_ PMKM_GUARDED_BY(mu_) = false;
  bool stopping_ PMKM_GUARDED_BY(mu_) = false;
  uint64_t next_job_id_ PMKM_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, std::unique_ptr<Job>> jobs_ PMKM_GUARDED_BY(mu_);
  std::deque<uint64_t> queue_ PMKM_GUARDED_BY(mu_);
  /// Finished ids in completion order, the eviction ring.
  std::deque<uint64_t> finished_ PMKM_GUARDED_BY(mu_);
  size_t running_ PMKM_GUARDED_BY(mu_) = 0;

  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace pmkm

#endif  // PMKM_SERVE_LOCAL_SERVICE_H_
