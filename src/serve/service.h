// ClusterService: the versioned clustering-as-a-service API (DESIGN.md
// §15). A service accepts partial/merge clustering *jobs* — the same
// EngineOptions surface PipelineBuilder runs — executes them
// asynchronously, and hands back the per-cell models.
//
// Two interchangeable implementations ship behind this interface:
//
//   LocalService  (serve/local_service.h)  in-process job queue + worker
//                                          pool wrapping PipelineBuilder
//   RemoteService (serve/remote_service.h) client over the framed binary
//                                          protocol (serve/protocol.h) to
//                                          a pmkm_serve daemon
//
// Callers program against ClusterService only, so a tool runs identically
// against an embedded engine or a shared daemon; the serve-smoke CI job
// holds the two to byte-identical models.

#ifndef PMKM_SERVE_SERVICE_H_
#define PMKM_SERVE_SERVICE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/grid.h"
#include "stream/engine.h"
#include "stream/ops.h"

namespace pmkm {
namespace serve {

/// Lifecycle of one submitted job.
///
///   kQueued → kRunning → {kDone, kFailed, kCancelled}
///   kQueued → kCancelled            (cancelled before a worker picked it)
///
/// The three right-hand states are terminal.
enum class JobState : uint32_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
};

const char* JobStateToString(JobState state);

inline bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// Everything one clustering job needs, expressed as the validated flag
/// surface (EngineFlags) plus the input bucket files. Using the flag
/// struct — strings for policy/kernel, sizes in KiB — keeps the wire
/// codec trivial and reuses EngineFlags::ToOptions() as the single
/// validation path on both ends.
struct JobSpec {
  /// On-disk grid-bucket files, as visible to the *executing* service
  /// (a remote daemon resolves these against its own filesystem).
  std::vector<std::string> bucket_paths;

  /// Engine configuration (k, restarts, memory budget, failure policy,
  /// kernel, checkpointing). The service clamps the resource asks into
  /// its own budget before running.
  EngineFlags engine;

  /// Explicit run id for artifact correlation (empty = generated).
  /// Protocol v2; a v1 peer drops it.
  std::string run_id;

  /// Admission-control identity: per-client job caps are keyed on this.
  /// Empty means the anonymous client. Protocol v2.
  std::string client;

  /// Validates and converts to the options PipelineBuilder consumes.
  Result<EngineOptions> ToEngineOptions() const {
    return engine.ToOptions();
  }
};

/// Snapshot of one job's lifecycle, as returned by JobStatus/ListJobs.
struct JobInfo {
  uint64_t job_id = 0;
  JobState state = JobState::kQueued;
  std::string client;
  std::string run_id;

  /// Terminal status: OK for kDone, the failure for kFailed, Cancelled
  /// for kCancelled. OK (meaningless) while queued/running.
  Status status;

  /// Model summary, populated once kDone.
  uint64_t cells = 0;
  double wall_seconds = 0.0;
};

/// The service interface. All methods are thread-safe; job ids are unique
/// for the lifetime of the service instance.
class ClusterService {
 public:
  virtual ~ClusterService() = default;

  /// Admits a job and returns its id without waiting for execution.
  /// Fails with InvalidArgument on a bad spec and FailedPrecondition when
  /// admission control rejects it (queue full, per-client cap, draining).
  virtual Result<uint64_t> SubmitJob(const JobSpec& spec) = 0;

  /// Snapshot of one job; NotFound for an unknown or expired id.
  virtual Result<JobInfo> JobStatus(uint64_t job_id) = 0;

  /// The finished per-cell models. FailedPrecondition until the job is
  /// kDone; the terminal status itself for kFailed/kCancelled jobs.
  /// Models are bit-exact across implementations: the wire codec reuses
  /// the checkpoint cell codec, which round-trips doubles bitwise.
  virtual Result<std::map<GridCellId, CellClustering>> FetchModel(
      uint64_t job_id) = 0;

  /// Requests cancellation: a queued job is cancelled immediately, a
  /// running one stops cooperatively at the next work-unit boundary.
  /// Returns OK once the request is registered (the job may still be
  /// draining); FailedPrecondition if the job already reached a terminal
  /// state, NotFound for an unknown id.
  virtual Status CancelJob(uint64_t job_id) = 0;

  /// All jobs the service still remembers (active plus a bounded ring of
  /// finished ones), in strictly ascending job_id order — i.e. submission
  /// order, oldest first. The ordering is part of the API contract (and
  /// of the wire encoding, EncodeJobList): clients, /jobz scrapers, and
  /// byte-level golden tests all rely on ListJobs output being stable
  /// regardless of completion/cancellation order (pmkm_detcheck rule
  /// `unordered-iter` guards the same property statically).
  virtual Result<std::vector<JobInfo>> ListJobs() = 0;

  /// Blocks until `job_id` reaches a terminal state and returns its final
  /// JobInfo. The default implementation polls JobStatus with backoff;
  /// LocalService overrides it with a condition-variable wait.
  /// `timeout_ms` = 0 waits forever; on expiry returns DeadlineExceeded.
  virtual Result<JobInfo> AwaitJob(uint64_t job_id, uint64_t timeout_ms);
};

}  // namespace serve
}  // namespace pmkm

#endif  // PMKM_SERVE_SERVICE_H_
