#include "serve/service.h"

#include <algorithm>
#include <chrono>

#include "common/annotations.h"

namespace pmkm {
namespace serve {

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Result<JobInfo> ClusterService::AwaitJob(uint64_t job_id,
                                         uint64_t timeout_ms) {
  // Poll with capped exponential backoff. The delay is a timed wait on a
  // private condition variable (never notified) rather than a sleep, so
  // the annotated primitives stay the only blocking mechanism in library
  // code.
  Mutex mu;
  CondVar cv;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  uint64_t delay_ms = 5;
  while (true) {
    PMKM_ASSIGN_OR_RETURN(JobInfo info, JobStatus(job_id));
    if (IsTerminal(info.state)) return info;
    if (timeout_ms != 0 && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("job " + std::to_string(job_id) +
                                      " still " +
                                      JobStateToString(info.state) +
                                      " after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    {
      MutexLock lock(mu);
      (void)cv.WaitFor(mu, std::chrono::milliseconds(delay_ms));
    }
    delay_ms = std::min<uint64_t>(delay_ms * 2, 200);
  }
}

}  // namespace serve
}  // namespace pmkm
