// Thin POSIX socket helpers shared by the serve daemon (listen/accept)
// and RemoteService (dial). Endpoints are strings:
//
//   unix:/path/to.sock     unix-domain socket
//   127.0.0.1:7070         loopback TCP (host must be an IPv4 literal)
//   127.0.0.1:0            loopback TCP on an ephemeral port
//
// Like the debug server, this is a local/loopback surface, not a public
// one: TCP endpoints refuse to bind non-loopback addresses. On platforms
// without POSIX sockets every function returns NotImplemented.

#ifndef PMKM_SERVE_NET_H_
#define PMKM_SERVE_NET_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace pmkm {
namespace serve {

/// A listening socket plus where it actually bound (the ephemeral port
/// resolved, the unix path echoed back).
struct Listener {
  int fd = -1;
  /// Re-dialable endpoint string ("127.0.0.1:43117" / "unix:/tmp/x.sock").
  std::string endpoint;
};

/// Parses, binds and listens on `endpoint`. For unix endpoints a stale
/// socket file from a dead process is removed before binding.
Result<Listener> ListenEndpoint(const std::string& endpoint);

/// Connects to `endpoint`; returns the connected fd.
Result<int> DialEndpoint(const std::string& endpoint);

/// Blocking accept. Distinguishes a closed listener (Cancelled) from a
/// transient failure (Internal) so the accept loop knows when to exit.
Result<int> AcceptConnection(int listen_fd);

/// Bounds every read/write on `fd` (slow-loris guard); 0 disables.
Status SetIoTimeout(int fd, int timeout_ms);

/// Writes the whole buffer or fails (IOError on timeout/reset).
Status WriteAll(int fd, std::span<const uint8_t> bytes);

/// Reads exactly `out.size()` bytes. A clean EOF before the first byte is
/// Cancelled ("peer closed"); EOF mid-buffer or a socket error is
/// IOError.
Status ReadExact(int fd, std::span<uint8_t> out);

/// Reads up to out.size() bytes; returns the count (0 = clean EOF).
Result<size_t> ReadSome(int fd, std::span<uint8_t> out);

/// shutdown()+close(): unblocks a thread parked in AcceptConnection or
/// ReadExact on this fd, then releases it. Safe on -1.
void CloseFd(int fd);

/// Removes the socket file of a unix endpoint (no-op for TCP); called by
/// the daemon on shutdown so restarts find a clean path.
void CleanupEndpoint(const std::string& endpoint);

}  // namespace serve
}  // namespace pmkm

#endif  // PMKM_SERVE_NET_H_
