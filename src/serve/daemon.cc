#include "serve/daemon.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace pmkm {
namespace serve {

ServeDaemon::ServeDaemon() = default;

ServeDaemon::~ServeDaemon() { Stop(); }

Status ServeDaemon::Start(const DaemonOptions& options) {
  {
    MutexLock lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("daemon already running");
    }
  }
  options_ = options;
  PMKM_ASSIGN_OR_RETURN(Listener listener,
                        ListenEndpoint(options.endpoint));
  bound_endpoint_ = listener.endpoint;
  service_ = std::make_unique<LocalService>(options.service);
  pool_ = std::make_unique<ThreadPool>(
      std::max<size_t>(1, options.num_handler_threads));
  {
    MutexLock lock(mu_);
    listen_fd_ = listener.fd;
    running_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PMKM_LOG(Info) << "serve daemon listening on " << bound_endpoint_;
  return Status::OK();
}

void ServeDaemon::BeginDrain() {
  if (service_ != nullptr) service_->BeginDrain();
}

void ServeDaemon::DrainAndStop() {
  if (service_ != nullptr) {
    service_->BeginDrain();
    service_->Drain();
  }
  Stop();
}

void ServeDaemon::Stop() {
  int fd = -1;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    fd = listen_fd_;
    listen_fd_ = -1;
  }
  CloseFd(fd);  // unblocks the accept loop
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_ != nullptr) {
    pool_->Shutdown();  // drains in-flight connection handlers
    pool_.reset();
  }
  if (service_ != nullptr) service_->Shutdown();
  CleanupEndpoint(bound_endpoint_);
}

void ServeDaemon::AcceptLoop() {
  while (true) {
    int listen_fd;
    {
      MutexLock lock(mu_);
      if (!running_) return;
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    Result<int> conn = AcceptConnection(listen_fd);
    if (!conn.ok()) {
      MutexLock lock(mu_);
      if (!running_) return;  // Stop() closed the listener under us
      continue;               // transient accept failure
    }
    const int fd = conn.value();
    if (!SetIoTimeout(fd, options_.io_timeout_ms).ok()) {
      CloseFd(fd);
      continue;
    }
    auto future = pool_->Submit([this, fd] { HandleConnection(fd); });
    if (!future.valid()) {
      CloseFd(fd);  // pool already shut down
      return;
    }
  }
}

void ServeDaemon::HandleConnection(int fd) {
  // Hello exchange; an invalid or too-old client is dropped here. All
  // socket I/O below is bounded by SO_RCVTIMEO/SO_SNDTIMEO
  // (options_.io_timeout_ms, set on the fd in AcceptLoop).
  uint8_t peer_hello[kHelloBytes];
  // pmkm-ctxcheck: allow(bounded-handler)
  if (!ReadExact(fd, peer_hello).ok()) {
    CloseFd(fd);
    return;
  }
  Result<uint32_t> peer_version =
      DecodeHello(std::span<const uint8_t>(peer_hello, kHelloBytes));
  if (!peer_version.ok()) {
    CloseFd(fd);
    return;
  }
  // Answer with our version even when rejecting, so an old client's error
  // message can name both versions.
  // pmkm-ctxcheck: allow(bounded-handler)  (SO_SNDTIMEO-bounded)
  if (!WriteAll(fd, EncodeHello(kProtocolVersion)).ok()) {
    CloseFd(fd);
    return;
  }
  Result<uint32_t> negotiated = NegotiateVersion(peer_version.value());
  if (!negotiated.ok()) {
    CloseFd(fd);
    return;
  }
  const uint32_t version = negotiated.value();

  // Request/reply loop until the client hangs up or the stream breaks.
  std::vector<uint8_t> buffer;
  uint8_t chunk[4096];
  while (true) {
    size_t consumed = 0;
    Result<std::optional<Frame>> frame = DecodeFrame(buffer, &consumed);
    if (!frame.ok()) {
      // Oversized or corrupt frame: this session is poisoned. Best-effort
      // error reply, then hang up.
      const std::vector<uint8_t> reply =
          EncodeReply(frame.error(), std::vector<uint8_t>());
      // pmkm-ctxcheck: allow(bounded-handler)  (SO_SNDTIMEO-bounded)
      (void)WriteAll(fd, EncodeFrame(FrameType::kReply, reply));
      break;
    }
    if (frame.value().has_value()) {
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<ptrdiff_t>(consumed));
      const std::vector<uint8_t> reply =
          Dispatch(*frame.value(), version);
      // pmkm-ctxcheck: allow(bounded-handler)  (SO_SNDTIMEO-bounded)
      if (!WriteAll(fd, EncodeFrame(FrameType::kReply, reply)).ok()) {
        break;
      }
      continue;
    }
    // pmkm-ctxcheck: allow(bounded-handler)  (SO_RCVTIMEO-bounded)
    Result<size_t> n = ReadSome(fd, chunk);
    if (!n.ok() || n.value() == 0) break;  // hangup or timeout
    buffer.insert(buffer.end(), chunk, chunk + n.value());
  }
  CloseFd(fd);
}

std::vector<uint8_t> ServeDaemon::Dispatch(const Frame& request,
                                           uint32_t version) {
  const std::vector<uint8_t> empty;
  switch (static_cast<FrameType>(request.type)) {
    case FrameType::kPing:
      return EncodeReply(Status::OK(), empty);
    case FrameType::kSubmitJob: {
      Result<JobSpec> spec = DecodeJobSpec(request.payload, version);
      if (!spec.ok()) return EncodeReply(spec.error(), empty);
      Result<uint64_t> job_id = service_->SubmitJob(spec.value());
      if (!job_id.ok()) return EncodeReply(job_id.error(), empty);
      return EncodeReply(Status::OK(), EncodeU64(job_id.value()));
    }
    case FrameType::kJobStatus: {
      Result<uint64_t> job_id = DecodeU64(request.payload);
      if (!job_id.ok()) return EncodeReply(job_id.error(), empty);
      Result<JobInfo> info = service_->JobStatus(job_id.value());
      if (!info.ok()) return EncodeReply(info.error(), empty);
      return EncodeReply(Status::OK(), EncodeJobInfo(info.value()));
    }
    case FrameType::kFetchModel: {
      Result<uint64_t> job_id = DecodeU64(request.payload);
      if (!job_id.ok()) return EncodeReply(job_id.error(), empty);
      Result<std::map<GridCellId, CellClustering>> cells =
          service_->FetchModel(job_id.value());
      if (!cells.ok()) return EncodeReply(cells.error(), empty);
      return EncodeReply(Status::OK(), EncodeModelSet(cells.value()));
    }
    case FrameType::kCancelJob: {
      Result<uint64_t> job_id = DecodeU64(request.payload);
      if (!job_id.ok()) return EncodeReply(job_id.error(), empty);
      return EncodeReply(service_->CancelJob(job_id.value()), empty);
    }
    case FrameType::kListJobs: {
      Result<std::vector<JobInfo>> jobs = service_->ListJobs();
      if (!jobs.ok()) return EncodeReply(jobs.error(), empty);
      return EncodeReply(Status::OK(), EncodeJobList(jobs.value()));
    }
    case FrameType::kReply:
      break;
  }
  return EncodeReply(
      Status::InvalidArgument("unknown request frame type " +
                              std::to_string(request.type)),
      empty);
}

}  // namespace serve
}  // namespace pmkm
