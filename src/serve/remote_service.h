// RemoteService: ClusterService client over the serve wire protocol
// (serve/protocol.h) to a pmkm_serve daemon on a unix-domain or loopback
// TCP socket.
//
// Connect() dials, exchanges hellos and fixes the effective protocol
// version; after that every API call is one request frame and one kReply
// frame on the shared connection. The protocol is strictly request/reply,
// so exchanges are serialized — but by a busy token handed off under mu_,
// not by holding mu_ across the socket I/O: the wire round trip runs with
// no lock held (pmkm_ctxcheck: no-block-under-lock), so a slow server
// stalls only concurrent callers, never connected()/negotiated_version()
// state queries. A Status carried in a reply is
// surfaced as that call's Status, so remote error semantics match
// LocalService exactly; transport failures surface as IOError and poison
// the connection (every later call fails fast until a new Connect()).

#ifndef PMKM_SERVE_REMOTE_SERVICE_H_
#define PMKM_SERVE_REMOTE_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace pmkm {
namespace serve {

class RemoteService : public ClusterService {
 public:
  RemoteService() = default;
  ~RemoteService() override;

  RemoteService(const RemoteService&) = delete;
  RemoteService& operator=(const RemoteService&) = delete;

  /// Dials `endpoint` ("unix:/path" or "127.0.0.1:port") and performs the
  /// handshake. Fails on a bad magic or an unsupported peer version.
  Status Connect(const std::string& endpoint) PMKM_EXCLUDES(mu_);

  /// Closes the connection; idempotent.
  void Disconnect() PMKM_EXCLUDES(mu_);

  bool connected() const PMKM_EXCLUDES(mu_);

  /// Version agreed with the server (valid after Connect).
  uint32_t negotiated_version() const PMKM_EXCLUDES(mu_);

  /// Liveness probe: one kPing round trip.
  Status Ping() PMKM_EXCLUDES(mu_);

  Result<uint64_t> SubmitJob(const JobSpec& spec) override
      PMKM_EXCLUDES(mu_);
  Result<JobInfo> JobStatus(uint64_t job_id) override PMKM_EXCLUDES(mu_);
  Result<std::map<GridCellId, CellClustering>> FetchModel(
      uint64_t job_id) override PMKM_EXCLUDES(mu_);
  Status CancelJob(uint64_t job_id) override PMKM_EXCLUDES(mu_);
  Result<std::vector<JobInfo>> ListJobs() override PMKM_EXCLUDES(mu_);

 private:
  /// One request/reply round trip. Returns the decoded reply; the carried
  /// Status is NOT yet applied (callers decide whether a non-OK status
  /// still has a meaningful body). Reserves the session (busy_), performs
  /// the socket I/O with mu_ released, then publishes the outcome.
  Result<Reply> Call(FrameType type, std::vector<uint8_t> payload)
      PMKM_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar io_done_;
  /// Session reservation: the thread that set busy_ owns fd_ and the
  /// stream until it clears it (with mu_ released in between — socket
  /// I/O must never run under mu_). Connect/Call/Disconnect all wait on
  /// io_done_ for the reservation, so fd_ is never closed or replaced
  /// under an in-flight exchange.
  bool busy_ PMKM_GUARDED_BY(mu_) = false;
  int fd_ PMKM_GUARDED_BY(mu_) = -1;
  uint32_t version_ PMKM_GUARDED_BY(mu_) = 0;
  /// Unconsumed bytes read past the previous frame boundary.
  std::vector<uint8_t> read_buffer_ PMKM_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace pmkm

#endif  // PMKM_SERVE_REMOTE_SERVICE_H_
