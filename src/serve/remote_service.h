// RemoteService: ClusterService client over the serve wire protocol
// (serve/protocol.h) to a pmkm_serve daemon on a unix-domain or loopback
// TCP socket.
//
// Connect() dials, exchanges hellos and fixes the effective protocol
// version; after that every API call is one request frame and one kReply
// frame on the shared connection (requests are serialized under a mutex —
// the protocol is strictly request/reply). A Status carried in a reply is
// surfaced as that call's Status, so remote error semantics match
// LocalService exactly; transport failures surface as IOError and poison
// the connection (every later call fails fast until a new Connect()).

#ifndef PMKM_SERVE_REMOTE_SERVICE_H_
#define PMKM_SERVE_REMOTE_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace pmkm {
namespace serve {

class RemoteService : public ClusterService {
 public:
  RemoteService() = default;
  ~RemoteService() override;

  RemoteService(const RemoteService&) = delete;
  RemoteService& operator=(const RemoteService&) = delete;

  /// Dials `endpoint` ("unix:/path" or "127.0.0.1:port") and performs the
  /// handshake. Fails on a bad magic or an unsupported peer version.
  Status Connect(const std::string& endpoint) PMKM_EXCLUDES(mu_);

  /// Closes the connection; idempotent.
  void Disconnect() PMKM_EXCLUDES(mu_);

  bool connected() const PMKM_EXCLUDES(mu_);

  /// Version agreed with the server (valid after Connect).
  uint32_t negotiated_version() const PMKM_EXCLUDES(mu_);

  /// Liveness probe: one kPing round trip.
  Status Ping() PMKM_EXCLUDES(mu_);

  Result<uint64_t> SubmitJob(const JobSpec& spec) override
      PMKM_EXCLUDES(mu_);
  Result<JobInfo> JobStatus(uint64_t job_id) override PMKM_EXCLUDES(mu_);
  Result<std::map<GridCellId, CellClustering>> FetchModel(
      uint64_t job_id) override PMKM_EXCLUDES(mu_);
  Status CancelJob(uint64_t job_id) override PMKM_EXCLUDES(mu_);
  Result<std::vector<JobInfo>> ListJobs() override PMKM_EXCLUDES(mu_);

 private:
  /// One request/reply round trip. Returns the decoded reply; the carried
  /// Status is NOT yet applied (callers decide whether a non-OK status
  /// still has a meaningful body).
  Result<Reply> Call(FrameType type, std::vector<uint8_t> payload)
      PMKM_EXCLUDES(mu_);
  Status CallLocked(FrameType type, const std::vector<uint8_t>& payload,
                    Reply* reply) PMKM_REQUIRES(mu_);

  mutable Mutex mu_;
  int fd_ PMKM_GUARDED_BY(mu_) = -1;
  uint32_t version_ PMKM_GUARDED_BY(mu_) = 0;
  /// Unconsumed bytes read past the previous frame boundary.
  std::vector<uint8_t> read_buffer_ PMKM_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace pmkm

#endif  // PMKM_SERVE_REMOTE_SERVICE_H_
