#include "serve/local_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/json.h"
#include "stream/engine.h"

namespace pmkm {
namespace serve {

LocalService::LocalService(LocalServiceOptions options)
    : options_(std::move(options)) {
  const size_t workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

LocalService::~LocalService() { Shutdown(); }

Result<uint64_t> LocalService::SubmitJob(const JobSpec& spec) {
  // Validate outside the lock: a bad spec never consumes a job id.
  {
    Result<EngineOptions> validated = spec.ToEngineOptions();
    if (!validated.ok()) return validated.error();
  }
  if (spec.bucket_paths.empty()) {
    return Status::InvalidArgument("job spec has no bucket paths");
  }
  MutexLock lock(mu_);
  if (draining_ || stopping_) {
    return Status::FailedPrecondition(
        "service is draining and not accepting new jobs");
  }
  if (queue_.size() >= options_.max_queued_jobs) {
    return Status::FailedPrecondition(
        "admission queue full (" + std::to_string(queue_.size()) + "/" +
        std::to_string(options_.max_queued_jobs) + " queued jobs)");
  }
  if (options_.max_jobs_per_client > 0 &&
      LiveJobsForClientLocked(spec.client) >= options_.max_jobs_per_client) {
    return Status::FailedPrecondition(
        "client '" + spec.client + "' is at its cap of " +
        std::to_string(options_.max_jobs_per_client) + " live jobs");
  }
  const uint64_t job_id = next_job_id_++;
  auto job = std::make_unique<Job>();
  job->spec = spec;
  job->info.job_id = job_id;
  job->info.state = JobState::kQueued;
  job->info.client = spec.client;
  job->info.run_id = spec.run_id;
  jobs_.emplace(job_id, std::move(job));
  queue_.push_back(job_id);
  work_available_.NotifyOne();
  jobs_changed_.NotifyAll();
  return job_id;
}

Result<JobInfo> LocalService::JobStatus(uint64_t job_id) {
  MutexLock lock(mu_);
  Job* job = FindJobLocked(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  return job->info;
}

Result<std::map<GridCellId, CellClustering>> LocalService::FetchModel(
    uint64_t job_id) {
  MutexLock lock(mu_);
  Job* job = FindJobLocked(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  switch (job->info.state) {
    case JobState::kDone:
      return job->result.cells;
    case JobState::kFailed:
    case JobState::kCancelled:
      return job->info.status;
    case JobState::kQueued:
    case JobState::kRunning:
      return Status::FailedPrecondition(
          "job " + std::to_string(job_id) + " is still " +
          JobStateToString(job->info.state));
  }
  return Status::Internal("unreachable job state");
}

Status LocalService::CancelJob(uint64_t job_id) {
  MutexLock lock(mu_);
  Job* job = FindJobLocked(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  if (IsTerminal(job->info.state)) {
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " is already " +
        JobStateToString(job->info.state));
  }
  job->cancel.store(true, std::memory_order_release);
  if (job->info.state == JobState::kQueued) {
    // Never picked up: cancel immediately and take it out of the queue.
    queue_.erase(std::remove(queue_.begin(), queue_.end(), job_id),
                 queue_.end());
    job->info.state = JobState::kCancelled;
    job->info.status = Status::Cancelled("cancelled while queued");
    finished_.push_back(job_id);
    EvictFinishedLocked();
    jobs_changed_.NotifyAll();
  }
  // A running job drains cooperatively; the worker records the terminal
  // state when the engine returns Cancelled.
  return Status::OK();
}

Result<std::vector<JobInfo>> LocalService::ListJobs() {
  MutexLock lock(mu_);
  std::vector<JobInfo> jobs;
  jobs.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    jobs.push_back(job->info);
  }
  // jobs_ is an ordered std::map keyed by id, so the loop above already
  // yields ascending ids — but the ascending-id contract (service.h) must
  // not silently rot if the container is ever swapped for a hash map, so
  // enforce it explicitly rather than inherit it.
  std::sort(jobs.begin(), jobs.end(),
            [](const JobInfo& a, const JobInfo& b) {
              return a.job_id < b.job_id;
            });
  return jobs;
}

Result<JobInfo> LocalService::AwaitJob(uint64_t job_id,
                                       uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  MutexLock lock(mu_);
  while (true) {
    Job* job = FindJobLocked(job_id);
    if (job == nullptr) {
      return Status::NotFound("no job with id " + std::to_string(job_id));
    }
    if (IsTerminal(job->info.state)) return job->info;
    if (timeout_ms == 0) {
      jobs_changed_.Wait(mu_);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::DeadlineExceeded(
          "job " + std::to_string(job_id) + " still " +
          JobStateToString(job->info.state) + " after " +
          std::to_string(timeout_ms) + "ms");
    }
    (void)jobs_changed_.WaitFor(
        mu_, std::chrono::duration_cast<std::chrono::milliseconds>(
                 deadline - now));
  }
}

void LocalService::BeginDrain() {
  MutexLock lock(mu_);
  draining_ = true;
  jobs_changed_.NotifyAll();
}

void LocalService::Drain() {
  MutexLock lock(mu_);
  while (!queue_.empty() || running_ != 0) jobs_changed_.Wait(mu_);
}

void LocalService::Shutdown() {
  {
    MutexLock lock(mu_);
    draining_ = true;
  }
  Drain();
  {
    MutexLock lock(mu_);
    if (stopping_) return;  // second Shutdown (destructor after explicit)
    stopping_ = true;
    work_available_.NotifyAll();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

bool LocalService::draining() const {
  MutexLock lock(mu_);
  return draining_;
}

Result<StreamRunResult> LocalService::RunResult(uint64_t job_id) {
  MutexLock lock(mu_);
  Job* job = FindJobLocked(job_id);
  if (job == nullptr) {
    return Status::NotFound("no job with id " + std::to_string(job_id));
  }
  if (job->info.state != JobState::kDone) {
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " is " +
        JobStateToString(job->info.state) + ", not done");
  }
  return job->result;
}

std::string LocalService::JobsJson() {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::Object();
  root.Set("draining", draining_);
  root.Set("queued", queue_.size());
  root.Set("running", running_);
  // Same explicit ascending-id contract as ListJobs (service.h): /jobz
  // consumers diff scrapes, so the array order must survive any future
  // change to the jobs_ container.
  std::vector<uint64_t> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  JsonValue jobs = JsonValue::Array();
  for (const uint64_t id : ids) {
    const std::unique_ptr<Job>& job = jobs_.at(id);
    JsonValue j = JsonValue::Object();
    j.Set("job_id", id);
    j.Set("state", JobStateToString(job->info.state));
    j.Set("client", job->info.client);
    j.Set("run_id", job->info.run_id);
    j.Set("buckets", job->spec.bucket_paths.size());
    if (IsTerminal(job->info.state)) {
      j.Set("status", job->info.status.ToString());
    }
    if (job->info.state == JobState::kDone) {
      j.Set("cells", job->info.cells);
      j.Set("wall_seconds", job->info.wall_seconds);
    }
    jobs.Append(std::move(j));
  }
  root.Set("jobs", std::move(jobs));
  return root.Dump(2) + "\n";
}

void LocalService::WorkerLoop() {
  while (true) {
    Job* job = nullptr;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_, nothing left to run
      const uint64_t job_id = queue_.front();
      queue_.pop_front();
      job = FindJobLocked(job_id);
      if (job == nullptr || job->info.state != JobState::kQueued) {
        continue;  // cancelled-while-queued raced the pop
      }
      job->info.state = JobState::kRunning;
      ++running_;
      jobs_changed_.NotifyAll();
    }
    RunJob(job);
    {
      MutexLock lock(mu_);
      --running_;
      finished_.push_back(job->info.job_id);
      EvictFinishedLocked();
      jobs_changed_.NotifyAll();
    }
  }
}

void LocalService::RunJob(Job* job) {
  // The spec was validated at admission; a failure here (e.g. a kernel
  // that disappeared) is just a failed job, not a crash.
  Result<EngineOptions> options_or = job->spec.ToEngineOptions();
  if (!options_or.ok()) {
    MutexLock lock(mu_);
    job->info.state = JobState::kFailed;
    job->info.status = options_or.error();
    return;
  }
  EngineOptions options = std::move(options_or).value();

  // Clamp the job's resource asks into the service budget: N tenants in
  // one process must not each claim the whole machine.
  const ResourceModel& budget = options_.budget;
  if (budget.memory_bytes_per_operator > 0) {
    options.resources.memory_bytes_per_operator =
        std::min(options.resources.memory_bytes_per_operator,
                 budget.memory_bytes_per_operator);
  }
  if (budget.cores > 0) {
    options.resources.cores =
        options.resources.cores == 0
            ? budget.cores
            : std::min(options.resources.cores, budget.cores);
  }

  PipelineBuilder builder(std::move(options));
  builder.WithCancelToken(&job->cancel);
  if (!job->spec.run_id.empty()) builder.WithRunId(job->spec.run_id);
  if (options_.debug_server != nullptr) {
    builder.WithDebugServer(options_.debug_server);
  }
  if (options_.metrics != nullptr) builder.WithMetrics(options_.metrics);
  if (options_.trace != nullptr) builder.WithTrace(options_.trace);

  Result<StreamRunResult> result = builder.Run(job->spec.bucket_paths);

  MutexLock lock(mu_);
  if (result.ok()) {
    job->result = std::move(result).value();
    job->info.state = JobState::kDone;
    job->info.status = Status::OK();
    job->info.run_id = job->result.run_id;
    job->info.cells = job->result.cells.size();
    job->info.wall_seconds = job->result.wall_seconds;
  } else if (result.error().IsCancelled()) {
    job->info.state = JobState::kCancelled;
    job->info.status = result.error();
  } else {
    job->info.state = JobState::kFailed;
    job->info.status = result.error();
  }
}

LocalService::Job* LocalService::FindJobLocked(uint64_t job_id) {
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

void LocalService::EvictFinishedLocked() {
  while (finished_.size() > options_.finished_retention) {
    jobs_.erase(finished_.front());
    finished_.pop_front();
  }
}

size_t LocalService::LiveJobsForClientLocked(const std::string& client) {
  size_t live = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->info.client == client && !IsTerminal(job->info.state)) {
      ++live;
    }
  }
  return live;
}

}  // namespace serve
}  // namespace pmkm
