#include "serve/net.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__linux__) || defined(__APPLE__)
#define PMKM_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace pmkm {
namespace serve {

#if defined(PMKM_HAVE_SOCKETS)

namespace {

constexpr const char kUnixPrefix[] = "unix:";

bool IsUnixEndpoint(const std::string& endpoint) {
  return endpoint.rfind(kUnixPrefix, 0) == 0;
}

std::string UnixPath(const std::string& endpoint) {
  return endpoint.substr(sizeof(kUnixPrefix) - 1);
}

Status SplitHostPort(const std::string& endpoint, std::string* host,
                     int* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument(
        "endpoint '" + endpoint +
        "' is neither unix:<path> nor <host>:<port>");
  }
  *host = endpoint.substr(0, colon);
  char* end = nullptr;
  const std::string port_str = endpoint.substr(colon + 1);
  const long v = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || v < 0 || v > 65535) {
    return Status::InvalidArgument("bad port in endpoint '" + endpoint +
                                   "'");
  }
  *port = static_cast<int>(v);
  return Status::OK();
}

Status FillUnixAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() ||
      path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix socket path '" + path +
                                   "' is empty or too long");
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  return Status::OK();
}

Status FillInetAddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host +
                                   "' (hostnames are not resolved; use a "
                                   "loopback literal)");
  }
  return Status::OK();
}

bool IsLoopback(const sockaddr_in& addr) {
  // 127.0.0.0/8.
  return (ntohl(addr.sin_addr.s_addr) >> 24) == 127;
}

}  // namespace

Result<Listener> ListenEndpoint(const std::string& endpoint) {
  int fd = -1;
  Listener listener;
  if (IsUnixEndpoint(endpoint)) {
    const std::string path = UnixPath(endpoint);
    sockaddr_un addr;
    PMKM_RETURN_NOT_OK(FillUnixAddr(path, &addr));
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("serve: socket() failed");
    // A stale socket file from a crashed daemon blocks bind(); remove it.
    // A *live* daemon also loses its file this way, but it keeps serving
    // existing connections — two daemons on one path is an operator
    // error this layer cannot detect portably.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Status::IOError("serve: cannot bind " + endpoint + ": " +
                             std::strerror(errno));
    }
    listener.endpoint = endpoint;
  } else {
    std::string host;
    int port = 0;
    PMKM_RETURN_NOT_OK(SplitHostPort(endpoint, &host, &port));
    sockaddr_in addr;
    PMKM_RETURN_NOT_OK(FillInetAddr(host, port, &addr));
    if (!IsLoopback(addr)) {
      return Status::InvalidArgument(
          "serve: refusing to bind non-loopback address '" + host +
          "' — the serve protocol is a local surface");
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("serve: socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Status::IOError("serve: cannot bind " + endpoint + ": " +
                             std::strerror(errno));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      return Status::Internal("serve: getsockname() failed");
    }
    listener.endpoint =
        host + ":" + std::to_string(ntohs(addr.sin_port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IOError("serve: listen() on " + endpoint + " failed: " +
                           std::strerror(errno));
  }
  listener.fd = fd;
  return listener;
}

Result<int> DialEndpoint(const std::string& endpoint) {
  if (IsUnixEndpoint(endpoint)) {
    sockaddr_un addr;
    PMKM_RETURN_NOT_OK(FillUnixAddr(UnixPath(endpoint), &addr));
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("serve: socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return Status::IOError("serve: cannot connect to " + endpoint + ": " +
                             std::strerror(errno));
    }
    return fd;
  }
  std::string host;
  int port = 0;
  PMKM_RETURN_NOT_OK(SplitHostPort(endpoint, &host, &port));
  sockaddr_in addr;
  PMKM_RETURN_NOT_OK(FillInetAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("serve: socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("serve: cannot connect to " + endpoint + ": " +
                           std::strerror(errno));
  }
  return fd;
}

Result<int> AcceptConnection(int listen_fd) {
  const int conn = ::accept(listen_fd, nullptr, nullptr);
  if (conn >= 0) return conn;
  if (errno == EBADF || errno == EINVAL) {
    // The listener was shut down / closed under us: orderly exit.
    return Status::Cancelled("listener closed");
  }
  return Status::Internal(std::string("serve: accept() failed: ") +
                          std::strerror(errno));
}

Status SetIoTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return Status::OK();
  timeval timeout;
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                   sizeof(timeout)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                   sizeof(timeout)) != 0) {
    return Status::Internal("serve: setsockopt(timeout) failed");
  }
  return Status::OK();
}

Status WriteAll(int fd, std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError(
          std::string("serve: send failed: ") +
          (n < 0 ? std::strerror(errno) : "peer closed"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadExact(int fd, std::span<uint8_t> out) {
  size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd, out.data() + got, out.size() - got, 0);
    if (n == 0) {
      if (got == 0) return Status::Cancelled("peer closed the connection");
      return Status::IOError("serve: connection closed mid-message (" +
                             std::to_string(got) + " of " +
                             std::to_string(out.size()) + " bytes)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("serve: recv failed: ") +
                             std::strerror(errno));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, std::span<uint8_t> out) {
  while (true) {
    const ssize_t n = ::recv(fd, out.data(), out.size(), 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Status::IOError(std::string("serve: recv failed: ") +
                           std::strerror(errno));
  }
}

void CloseFd(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void CleanupEndpoint(const std::string& endpoint) {
  if (IsUnixEndpoint(endpoint)) {
    ::unlink(UnixPath(endpoint).c_str());
  }
}

#else  // !PMKM_HAVE_SOCKETS

namespace {
Status NoSockets() {
  return Status::NotImplemented("the serve layer requires POSIX sockets");
}
}  // namespace

Result<Listener> ListenEndpoint(const std::string&) { return NoSockets(); }
Result<int> DialEndpoint(const std::string&) { return NoSockets(); }
Result<int> AcceptConnection(int) { return NoSockets(); }
Status SetIoTimeout(int, int) { return NoSockets(); }
Status WriteAll(int, std::span<const uint8_t>) { return NoSockets(); }
Status ReadExact(int, std::span<uint8_t>) { return NoSockets(); }
Result<size_t> ReadSome(int, std::span<uint8_t>) { return NoSockets(); }
void CloseFd(int) {}
void CleanupEndpoint(const std::string&) {}

#endif  // PMKM_HAVE_SOCKETS

}  // namespace serve
}  // namespace pmkm
