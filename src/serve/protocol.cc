#include "serve/protocol.h"

#include <algorithm>
#include <cstring>

#include "common/annotations.h"
#include "data/manifest.h"
#include "stream/checkpoint.h"

namespace pmkm {
namespace serve {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives.

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutDouble(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

void PutBool(std::vector<uint8_t>* out, bool v) {
  out->push_back(v ? 1 : 0);
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

/// Cursor over a payload with bounds-checked typed reads. Every reader
/// method fails cleanly on truncation so a malicious or torn payload can
/// never read out of bounds.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU32(uint32_t* out) {
    PMKM_RETURN_NOT_OK(Need(4));
    *out = LoadU32(data_.data() + pos_);
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    PMKM_RETURN_NOT_OK(ReadU32(&lo));
    PMKM_RETURN_NOT_OK(ReadU32(&hi));
    *out = (static_cast<uint64_t>(hi) << 32) | lo;
    return Status::OK();
  }

  Status ReadI32(int32_t* out) {
    uint32_t v = 0;
    PMKM_RETURN_NOT_OK(ReadU32(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }

  Status ReadI64(int64_t* out) {
    uint64_t v = 0;
    PMKM_RETURN_NOT_OK(ReadU64(&v));
    *out = static_cast<int64_t>(v);
    return Status::OK();
  }

  Status ReadDouble(double* out) {
    uint64_t bits = 0;
    PMKM_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint32_t len = 0;
    PMKM_RETURN_NOT_OK(ReadU32(&len));
    if (len > kMaxFramePayload) {
      return Status::OutOfRange("wire string length " + std::to_string(len) +
                                " exceeds the frame cap");
    }
    PMKM_RETURN_NOT_OK(Need(len));
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  Status ReadBool(bool* out) {
    PMKM_RETURN_NOT_OK(Need(1));
    *out = data_[pos_] != 0;
    pos_ += 1;
    return Status::OK();
  }

  Status ReadBytes(size_t len, std::span<const uint8_t>* out) {
    PMKM_RETURN_NOT_OK(Need(len));
    *out = data_.subspan(pos_, len);
    pos_ += len;
    return Status::OK();
  }

 private:
  Status Need(size_t n) {
    if (remaining() < n) {
      return Status::OutOfRange("truncated wire payload: need " +
                                std::to_string(n) + " bytes, have " +
                                std::to_string(remaining()));
    }
    return Status::OK();
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

uint32_t FrameCrc(uint32_t type, std::span<const uint8_t> payload) {
  uint8_t type_le[4];
  type_le[0] = static_cast<uint8_t>(type);
  type_le[1] = static_cast<uint8_t>(type >> 8);
  type_le[2] = static_cast<uint8_t>(type >> 16);
  type_le[3] = static_cast<uint8_t>(type >> 24);
  const uint32_t seed = Crc32c(type_le, sizeof(type_le));
  return Crc32c(payload.data(), payload.size(), seed);
}

}  // namespace

// ---------------------------------------------------------------------------
// Handshake.

std::vector<uint8_t> EncodeHello(uint32_t version) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  out.reserve(kHelloBytes);
  PutU32(&out, kProtocolMagic);
  PutU32(&out, version);
  return out;
}

Result<uint32_t> DecodeHello(std::span<const uint8_t> bytes) {
  if (bytes.size() < kHelloBytes) {
    return Status::OutOfRange("truncated hello: got " +
                              std::to_string(bytes.size()) + " of " +
                              std::to_string(kHelloBytes) + " bytes");
  }
  const uint32_t magic = LoadU32(bytes.data());
  if (magic != kProtocolMagic) {
    return Status::InvalidArgument("bad protocol magic: not a pmkm serve "
                                   "peer");
  }
  return LoadU32(bytes.data() + 4);
}

Result<uint32_t> NegotiateVersion(uint32_t peer_version) {
  const uint32_t effective = std::min(kProtocolVersion, peer_version);
  if (effective < kMinProtocolVersion) {
    return Status::FailedPrecondition(
        "peer protocol version " + std::to_string(peer_version) +
        " is older than the minimum supported version " +
        std::to_string(kMinProtocolVersion));
  }
  return effective;
}

// ---------------------------------------------------------------------------
// Framing.

std::vector<uint8_t> EncodeFrame(
    FrameType type, std::span<const uint8_t> payload) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  out.reserve(kFrameFixedBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, static_cast<uint32_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32(&out, FrameCrc(static_cast<uint32_t>(type), payload));
  return out;
}

Result<std::optional<Frame>> DecodeFrame(std::span<const uint8_t> buffer,
                                         size_t* consumed) {
  *consumed = 0;
  if (buffer.size() < 8) return std::optional<Frame>();
  const uint32_t payload_len = LoadU32(buffer.data());
  if (payload_len > kMaxFramePayload) {
    return Status::OutOfRange("frame payload length " +
                              std::to_string(payload_len) +
                              " exceeds the 64 MiB cap");
  }
  const size_t total = kFrameFixedBytes + payload_len;
  if (buffer.size() < total) return std::optional<Frame>();
  const uint32_t type = LoadU32(buffer.data() + 4);
  const std::span<const uint8_t> payload = buffer.subspan(8, payload_len);
  const uint32_t stored_crc = LoadU32(buffer.data() + 8 + payload_len);
  const uint32_t actual_crc = FrameCrc(type, payload);
  if (stored_crc != actual_crc) {
    return Status::IOError("frame CRC mismatch: stream corrupted");
  }
  Frame frame;
  frame.type = type;
  frame.payload.assign(payload.begin(), payload.end());
  *consumed = total;
  return std::optional<Frame>(std::move(frame));
}

// ---------------------------------------------------------------------------
// JobSpec.

std::vector<uint8_t> EncodeJobSpec(const JobSpec& spec,
                                   uint32_t version) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(spec.bucket_paths.size()));
  for (const std::string& path : spec.bucket_paths) {
    PutString(&out, path);
  }
  PutU64(&out, static_cast<uint64_t>(spec.engine.k));
  PutU64(&out, static_cast<uint64_t>(spec.engine.restarts));
  PutU64(&out, static_cast<uint64_t>(spec.engine.memory_kib));
  PutU64(&out, static_cast<uint64_t>(spec.engine.cores));
  PutString(&out, spec.engine.failure_policy);
  PutU64(&out, static_cast<uint64_t>(spec.engine.max_retries));
  PutU64(&out, static_cast<uint64_t>(spec.engine.op_timeout_ms));
  PutString(&out, spec.engine.kernel);
  PutString(&out, spec.engine.checkpoint_dir);
  PutU64(&out, static_cast<uint64_t>(spec.engine.checkpoint_sync));
  PutBool(&out, spec.engine.resume);
  if (version >= 2) {
    PutString(&out, spec.run_id);
    PutString(&out, spec.client);
  }
  return out;
}

Result<JobSpec> DecodeJobSpec(std::span<const uint8_t> payload,
                              uint32_t version) {
  WireReader reader(payload);
  JobSpec spec;
  uint32_t path_count = 0;
  PMKM_RETURN_NOT_OK(reader.ReadU32(&path_count));
  // Each path costs at least its 4-byte length prefix, so a sane count
  // can never exceed the remaining payload.
  if (path_count > reader.remaining() / 4) {
    return Status::OutOfRange("job spec path count " +
                              std::to_string(path_count) +
                              " exceeds the payload");
  }
  spec.bucket_paths.reserve(path_count);
  for (uint32_t i = 0; i < path_count; ++i) {
    std::string path;
    PMKM_RETURN_NOT_OK(reader.ReadString(&path));
    spec.bucket_paths.push_back(std::move(path));
  }
  PMKM_RETURN_NOT_OK(reader.ReadI64(&spec.engine.k));
  PMKM_RETURN_NOT_OK(reader.ReadI64(&spec.engine.restarts));
  PMKM_RETURN_NOT_OK(reader.ReadI64(&spec.engine.memory_kib));
  PMKM_RETURN_NOT_OK(reader.ReadI64(&spec.engine.cores));
  PMKM_RETURN_NOT_OK(reader.ReadString(&spec.engine.failure_policy));
  PMKM_RETURN_NOT_OK(reader.ReadI64(&spec.engine.max_retries));
  PMKM_RETURN_NOT_OK(reader.ReadI64(&spec.engine.op_timeout_ms));
  PMKM_RETURN_NOT_OK(reader.ReadString(&spec.engine.kernel));
  PMKM_RETURN_NOT_OK(reader.ReadString(&spec.engine.checkpoint_dir));
  PMKM_RETURN_NOT_OK(reader.ReadI64(&spec.engine.checkpoint_sync));
  PMKM_RETURN_NOT_OK(reader.ReadBool(&spec.engine.resume));
  if (version >= 2) {
    PMKM_RETURN_NOT_OK(reader.ReadString(&spec.run_id));
    PMKM_RETURN_NOT_OK(reader.ReadString(&spec.client));
  }
  // Trailing bytes (fields from a newer minor version) are ignored.
  return spec;
}

// ---------------------------------------------------------------------------
// JobInfo.

namespace {

void AppendJobInfo(std::vector<uint8_t>* out, const JobInfo& info) {
  PutU64(out, info.job_id);
  PutU32(out, static_cast<uint32_t>(info.state));
  PutI32(out, static_cast<int32_t>(info.status.code()));
  PutString(out, info.status.message());
  PutString(out, info.client);
  PutString(out, info.run_id);
  PutU64(out, info.cells);
  PutDouble(out, info.wall_seconds);
}

Status ReadJobInfo(WireReader* reader, JobInfo* info) {
  PMKM_RETURN_NOT_OK(reader->ReadU64(&info->job_id));
  uint32_t state = 0;
  PMKM_RETURN_NOT_OK(reader->ReadU32(&state));
  if (state > static_cast<uint32_t>(JobState::kCancelled)) {
    return Status::OutOfRange("unknown job state tag " +
                              std::to_string(state));
  }
  info->state = static_cast<JobState>(state);
  int32_t code = 0;
  std::string message;
  PMKM_RETURN_NOT_OK(reader->ReadI32(&code));
  PMKM_RETURN_NOT_OK(reader->ReadString(&message));
  if (code < static_cast<int32_t>(StatusCode::kOk) ||
      code > static_cast<int32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::OutOfRange("unknown status code tag " +
                              std::to_string(code));
  }
  info->status = Status(static_cast<StatusCode>(code), std::move(message));
  PMKM_RETURN_NOT_OK(reader->ReadString(&info->client));
  PMKM_RETURN_NOT_OK(reader->ReadString(&info->run_id));
  PMKM_RETURN_NOT_OK(reader->ReadU64(&info->cells));
  PMKM_RETURN_NOT_OK(reader->ReadDouble(&info->wall_seconds));
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeJobInfo(const JobInfo& info) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  AppendJobInfo(&out, info);
  return out;
}

Result<JobInfo> DecodeJobInfo(std::span<const uint8_t> payload) {
  WireReader reader(payload);
  JobInfo info;
  PMKM_RETURN_NOT_OK(ReadJobInfo(&reader, &info));
  return info;
}

std::vector<uint8_t> EncodeJobList(
    const std::vector<JobInfo>& jobs) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(jobs.size()));
  for (const JobInfo& info : jobs) {
    AppendJobInfo(&out, info);
  }
  return out;
}

Result<std::vector<JobInfo>> DecodeJobList(
    std::span<const uint8_t> payload) {
  WireReader reader(payload);
  uint32_t count = 0;
  PMKM_RETURN_NOT_OK(reader.ReadU32(&count));
  // A JobInfo is at least 40 fixed bytes on the wire.
  if (count > reader.remaining() / 40) {
    return Status::OutOfRange("job list count " + std::to_string(count) +
                              " exceeds the payload");
  }
  std::vector<JobInfo> jobs;
  jobs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    JobInfo info;
    PMKM_RETURN_NOT_OK(ReadJobInfo(&reader, &info));
    jobs.push_back(std::move(info));
  }
  return jobs;
}

// ---------------------------------------------------------------------------
// Model set.

std::vector<uint8_t> EncodeModelSet(
    const std::map<GridCellId, CellClustering>& cells) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(cells.size()));
  for (const auto& [cell, clustering] : cells) {
    const std::vector<uint8_t> blob = EncodeCellComplete(clustering);
    PutU32(&out, static_cast<uint32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

Result<std::map<GridCellId, CellClustering>> DecodeModelSet(
    std::span<const uint8_t> payload) {
  WireReader reader(payload);
  uint32_t count = 0;
  PMKM_RETURN_NOT_OK(reader.ReadU32(&count));
  if (count > reader.remaining() / 4) {
    return Status::OutOfRange("model set cell count " +
                              std::to_string(count) +
                              " exceeds the payload");
  }
  std::map<GridCellId, CellClustering> cells;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t blob_len = 0;
    PMKM_RETURN_NOT_OK(reader.ReadU32(&blob_len));
    std::span<const uint8_t> blob;
    PMKM_RETURN_NOT_OK(reader.ReadBytes(blob_len, &blob));
    PMKM_ASSIGN_OR_RETURN(CellClustering clustering,
                          DecodeCellComplete(blob));
    const GridCellId cell = clustering.cell;
    cells.emplace(cell, std::move(clustering));
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Scalars and replies.

std::vector<uint8_t> EncodeU64(uint64_t value) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  PutU64(&out, value);
  return out;
}

Result<uint64_t> DecodeU64(std::span<const uint8_t> payload) {
  WireReader reader(payload);
  uint64_t value = 0;
  PMKM_RETURN_NOT_OK(reader.ReadU64(&value));
  return value;
}

std::vector<uint8_t> EncodeReply(
    const Status& status, std::span<const uint8_t> body) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  PutI32(&out, static_cast<int32_t>(status.code()));
  PutString(&out, status.message());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<Reply> DecodeReply(std::span<const uint8_t> payload) {
  WireReader reader(payload);
  int32_t code = 0;
  std::string message;
  PMKM_RETURN_NOT_OK(reader.ReadI32(&code));
  PMKM_RETURN_NOT_OK(reader.ReadString(&message));
  if (code < static_cast<int32_t>(StatusCode::kOk) ||
      code > static_cast<int32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::OutOfRange("unknown status code tag " +
                              std::to_string(code));
  }
  Reply reply;
  reply.status = Status(static_cast<StatusCode>(code), std::move(message));
  std::span<const uint8_t> body;
  PMKM_RETURN_NOT_OK(reader.ReadBytes(reader.remaining(), &body));
  reply.body.assign(body.begin(), body.end());
  return reply;
}

}  // namespace serve
}  // namespace pmkm
