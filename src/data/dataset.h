// Dataset: the in-memory point container used everywhere in pmkm.
//
// Points are D-dimensional double vectors stored row-major in one contiguous
// buffer, which keeps the k-means inner loops cache-friendly and makes
// binary (de)serialization a single read/write.

#ifndef PMKM_DATA_DATASET_H_
#define PMKM_DATA_DATASET_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace pmkm {

/// A resizable, row-major collection of D-dimensional points.
class Dataset {
 public:
  /// Creates an empty dataset of the given dimensionality (>= 1).
  explicit Dataset(size_t dim = 1) : dim_(dim) { PMKM_CHECK(dim >= 1); }

  /// Creates a dataset from flat row-major values; values.size() must be a
  /// multiple of dim.
  static Result<Dataset> FromFlat(size_t dim, std::vector<double> values);

  size_t dim() const { return dim_; }
  size_t size() const { return values_.size() / dim_; }
  bool empty() const { return values_.empty(); }

  /// Read-only view of point i.
  std::span<const double> Row(size_t i) const {
    PMKM_DCHECK(i < size());
    return {values_.data() + i * dim_, dim_};
  }

  /// Mutable view of point i.
  std::span<double> MutableRow(size_t i) {
    PMKM_DCHECK(i < size());
    return {values_.data() + i * dim_, dim_};
  }

  /// Element access: point i, coordinate d.
  double operator()(size_t i, size_t d) const {
    PMKM_DCHECK(i < size() && d < dim_);
    return values_[i * dim_ + d];
  }
  double& operator()(size_t i, size_t d) {
    PMKM_DCHECK(i < size() && d < dim_);
    return values_[i * dim_ + d];
  }

  /// Appends one point; point.size() must equal dim().
  void Append(std::span<const double> point) {
    PMKM_DCHECK(point.size() == dim_);
    values_.insert(values_.end(), point.begin(), point.end());
  }

  /// Appends every point of `other` (same dimensionality required).
  void AppendAll(const Dataset& other) {
    PMKM_CHECK(other.dim_ == dim_);
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
  }

  void Reserve(size_t num_points) { values_.reserve(num_points * dim_); }
  void Clear() { values_.clear(); }

  const double* data() const { return values_.data(); }
  double* mutable_data() { return values_.data(); }
  const std::vector<double>& values() const { return values_; }

  /// Copies rows [begin, end) into a new dataset.
  Dataset Slice(size_t begin, size_t end) const;

  /// Per-coordinate arithmetic mean of all points. Requires size() > 0.
  std::vector<double> Mean() const;

  /// Randomly permutes the point order in place (Fisher–Yates).
  void Shuffle(Rng* rng);

  bool operator==(const Dataset& other) const {
    return dim_ == other.dim_ && values_ == other.values_;
  }

 private:
  size_t dim_;
  std::vector<double> values_;
};

/// Splits `data` into `num_parts` near-equal random partitions — the
/// paper's "randomly distributed over 5 or 10 chunks" slicing. Sizes differ
/// by at most one point. Requires num_parts >= 1.
std::vector<Dataset> SplitRandom(const Dataset& data, size_t num_parts,
                                 Rng* rng);

/// Splits `data` into `num_parts` contiguous slices in arrival order — the
/// "salami" slicing the paper lists as future work. Sizes differ by at most
/// one point.
std::vector<Dataset> SplitContiguous(const Dataset& data, size_t num_parts);

}  // namespace pmkm

#endif  // PMKM_DATA_DATASET_H_
