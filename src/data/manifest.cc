#include "data/manifest.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/fault.h"

namespace pmkm {

namespace {

// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected = 0x82F63B78),
// byte-at-a-time table. Software implementation: the journal records are
// small and appended off the compute hot path, so table lookup speed is
// plenty.
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int j = 0; j < 8; ++j) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + ": " + path + " (" + std::strerror(errno) + ")";
}

// Little-endian fixed-width codec for the record framing. The journal is
// only ever read on the architecture family that wrote it (little-endian
// everywhere we run), but going through byte stores keeps the format
// defined rather than struct-layout-dependent.
void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

// Writes all of `len` bytes, retrying short writes. Returns an IOError on
// failure (partial bytes may have reached the file — recovery discards
// them).
Status WriteFully(int fd, const uint8_t* data, size_t len,
                  const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("journal write failed", path));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Builds the on-disk frame for one record:
//   [payload_len u32][type u32][seq u64][payload][crc32c u32]
// with the CRC taken over type|seq|payload.
std::vector<uint8_t> EncodeFrame(uint32_t type, uint64_t seq,
                                 std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame(internal::kRecordFixedBytes + payload.size());
  PutU32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutU32(frame.data() + 4, type);
  PutU64(frame.data() + 8, seq);
  if (!payload.empty()) {
    std::memcpy(frame.data() + 16, payload.data(), payload.size());
  }
  const uint32_t crc = Crc32c(frame.data() + 4, 12 + payload.size());
  PutU32(frame.data() + 16 + payload.size(), crc);
  return frame;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const uint32_t* table = Crc32cTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

Status FsyncPath(const std::string& path) {
  PMKM_FAULT_POINT("io.fsync");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open for fsync", path));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(ErrnoMessage("fsync failed", path));
  }
  return Status::OK();
}

Status FsyncFileAndDir(const std::string& path) {
  PMKM_RETURN_NOT_OK(FsyncPath(path));
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  return FsyncPath(parent.empty() ? std::string(".") : parent.string());
}

Status AtomicWriteFile(const std::string& path,
                       std::span<const uint8_t> bytes) {
  PMKM_FAULT_POINT("io.write");
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open for writing", tmp));
  }
  Status st = WriteFully(fd, bytes.data(), bytes.size(), tmp);
  if (st.ok()) {
    st = FaultRegistry::Global().Hit("io.fsync");
    if (st.ok() && ::fsync(fd) != 0) {
      st = Status::IOError(ErrnoMessage("fsync failed", tmp));
    }
  }
  if (::close(fd) != 0 && st.ok()) {
    st = Status::IOError(ErrnoMessage("close failed", tmp));
  }
  if (!st.ok()) return st;
  PMKM_FAULT_POINT("io.rename");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot rename into place: " + path + " (" +
                           ec.message() + ")");
  }
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  return FsyncPath(parent.empty() ? std::string(".") : parent.string());
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  return AtomicWriteFile(
      path, std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(bytes.data()),
                bytes.size()));
}

Result<JournalRecovery> RecoverJournal(const std::string& path) {
  JournalRecovery out;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return out;

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open journal", path));
  }
  std::vector<uint8_t> bytes;
  {
    const uint64_t size = std::filesystem::file_size(path, ec);
    bytes.resize(ec ? 0 : static_cast<size_t>(size));
    size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::read(fd, bytes.data() + done, bytes.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::IOError(ErrnoMessage("cannot read journal", path));
      }
      if (n == 0) break;  // racing truncation; scan what we got
      done += static_cast<size_t>(n);
    }
    bytes.resize(done);
  }
  ::close(fd);

  // Header. A file shorter than the header (crash during creation) is an
  // empty journal with a torn tail, not an error.
  if (bytes.size() < internal::kJournalHeaderBytes) {
    if (!bytes.empty()) {
      out.torn_tail = true;
      out.tail_error = "truncated journal header";
    }
    return out;
  }
  if (GetU32(bytes.data()) != internal::kJournalMagic) {
    out.torn_tail = true;
    out.tail_error = "bad journal magic";
    return out;
  }
  if (GetU32(bytes.data() + 4) != internal::kJournalVersion) {
    out.torn_tail = true;
    out.tail_error =
        "unsupported journal version " +
        std::to_string(GetU32(bytes.data() + 4));
    return out;
  }
  out.valid_bytes = internal::kJournalHeaderBytes;

  // Records: stop at the first frame whose length, framing, or checksum is
  // invalid. Everything before is the last valid epoch.
  size_t pos = internal::kJournalHeaderBytes;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < internal::kRecordFixedBytes) {
      out.torn_tail = true;
      out.tail_error = "truncated record framing at offset " +
                       std::to_string(pos);
      break;
    }
    const uint32_t payload_len = GetU32(bytes.data() + pos);
    if (payload_len > internal::kMaxRecordPayload ||
        remaining - internal::kRecordFixedBytes < payload_len) {
      out.torn_tail = true;
      out.tail_error = "truncated or implausible record (payload " +
                       std::to_string(payload_len) + " bytes) at offset " +
                       std::to_string(pos);
      break;
    }
    const uint32_t stored_crc =
        GetU32(bytes.data() + pos + 16 + payload_len);
    const uint32_t computed_crc =
        Crc32c(bytes.data() + pos + 4, 12 + payload_len);
    if (stored_crc != computed_crc) {
      out.torn_tail = true;
      out.tail_error =
          "record checksum mismatch at offset " + std::to_string(pos);
      break;
    }
    JournalRecord record;
    record.type = GetU32(bytes.data() + pos + 4);
    record.seq = GetU64(bytes.data() + pos + 8);
    // Writers stamp a contiguous sequence starting at 1, so a gap or a
    // duplicate (e.g. a retried append that reached the disk twice) is
    // corruption: the chain ends at the previous record.
    if (record.seq != out.epoch + 1) {
      out.torn_tail = true;
      out.tail_error = "record sequence discontinuity (seq " +
                       std::to_string(record.seq) + " after epoch " +
                       std::to_string(out.epoch) + ") at offset " +
                       std::to_string(pos);
      break;
    }
    record.payload.assign(bytes.begin() + static_cast<ptrdiff_t>(pos + 16),
                          bytes.begin() +
                              static_cast<ptrdiff_t>(pos + 16 + payload_len));
    out.epoch = record.seq;
    out.records.push_back(std::move(record));
    pos += internal::kRecordFixedBytes + payload_len;
    out.valid_bytes = pos;
  }
  return out;
}

Result<JournalWriter> JournalWriter::Open(const std::string& path,
                                          bool truncate) {
  JournalWriter writer;
  writer.path_ = path;
  if (!truncate) {
    PMKM_ASSIGN_OR_RETURN(writer.recovered_, RecoverJournal(path));
  }

  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open journal", path));
  }
  writer.fd_ = fd;

  const bool fresh =
      truncate || writer.recovered_.valid_bytes < internal::kJournalHeaderBytes;
  const uint64_t keep =
      fresh ? 0 : writer.recovered_.valid_bytes;
  // Drop any torn tail (and, for a fresh journal, everything) so appends
  // always extend a valid prefix.
  if (::ftruncate(fd, static_cast<off_t>(keep)) != 0) {
    return Status::IOError(ErrnoMessage("cannot truncate journal", path));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    return Status::IOError(ErrnoMessage("cannot seek journal", path));
  }
  if (fresh) {
    writer.recovered_ = JournalRecovery{};
    uint8_t header[internal::kJournalHeaderBytes];
    PutU32(header, internal::kJournalMagic);
    PutU32(header + 4, internal::kJournalVersion);
    PMKM_RETURN_NOT_OK(WriteFully(fd, header, sizeof(header), path));
    writer.bytes_appended_ += sizeof(header);
  }
  writer.next_seq_ = writer.recovered_.epoch + 1;
  return writer;
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      next_seq_(other.next_seq_),
      bytes_appended_(other.bytes_appended_),
      recovered_(std::move(other.recovered_)) {
  other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    next_seq_ = other.next_seq_;
    bytes_appended_ = other.bytes_appended_;
    recovered_ = std::move(other.recovered_);
    other.fd_ = -1;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status JournalWriter::Append(uint32_t type,
                             std::span<const uint8_t> payload) {
  if (fd_ < 0) return Status::FailedPrecondition("journal writer closed");
  if (payload.size() > internal::kMaxRecordPayload) {
    return Status::InvalidArgument("journal record payload too large");
  }
  PMKM_FAULT_POINT("journal.append");
  const std::vector<uint8_t> frame = EncodeFrame(type, next_seq_, payload);
  // Torn-write fault: persist only a prefix of the frame, then report the
  // failure — exactly what a power loss mid-append leaves behind.
  // Recovery must discard the partial frame.
  if (const Status torn = FaultRegistry::Global().Hit("journal.torn");
      !torn.ok()) {
    (void)WriteFully(fd_, frame.data(), frame.size() / 2, path_);
    (void)::fsync(fd_);
    return torn;
  }
  PMKM_RETURN_NOT_OK(WriteFully(fd_, frame.data(), frame.size(), path_));
  ++next_seq_;
  bytes_appended_ += frame.size();
  return Status::OK();
}

Status JournalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("journal writer closed");
  PMKM_FAULT_POINT("io.fsync");
  if (::fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed", path_));
  }
  return Status::OK();
}

Status JournalWriter::Close() {
  if (fd_ < 0) return Status::FailedPrecondition("journal writer closed");
  const Status st = Sync();
  ::close(fd_);
  fd_ = -1;
  return st;
}

}  // namespace pmkm
