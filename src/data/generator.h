// Synthetic workload generators.
//
// The paper's evaluation data was itself synthetic: "We used the R
// statistical package to recreate the files with the same distribution"
// (§5.1). We reproduce that setup with a Gaussian-mixture generator whose
// per-cell specs mimic MISR radiance structure: six correlated attributes,
// cluster counts and weights drawn with a heavy tail, anisotropic spreads.

#ifndef PMKM_DATA_GENERATOR_H_
#define PMKM_DATA_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace pmkm {

/// One mixture component: an axis-aligned Gaussian with mixing weight.
struct GaussianComponent {
  std::vector<double> mean;
  std::vector<double> stddev;  // per-coordinate; same size as mean
  double weight = 1.0;         // relative (normalized internally)
};

/// Samples from a finite mixture of axis-aligned Gaussians.
class GaussianMixtureGenerator {
 public:
  /// Components must be non-empty, share one dimensionality and have
  /// positive weights and non-negative stddevs.
  static Result<GaussianMixtureGenerator> Create(
      std::vector<GaussianComponent> components);

  size_t dim() const { return dim_; }
  const std::vector<GaussianComponent>& components() const {
    return components_;
  }

  /// Draws n i.i.d. points.
  Dataset Sample(size_t n, Rng* rng) const;

 private:
  GaussianMixtureGenerator() = default;
  size_t dim_ = 0;
  std::vector<GaussianComponent> components_;
  std::vector<double> cumulative_;  // CDF over components
};

/// Parameters for the MISR-like cell distribution used throughout the
/// experiments (paper §5.1: D = 6 radiance attributes).
struct MisrCellSpec {
  size_t dim = 6;
  size_t num_components = 12;  // latent scene types per cell
  double value_range = 100.0;  // radiance-like dynamic range
  double min_stddev = 0.5;
  double max_stddev = 6.0;
  double correlation = 0.7;    // strength of the shared latent factor
};

/// Builds a random mixture with correlated attribute means (one latent
/// brightness factor plus per-attribute offsets) and Zipf-ish component
/// weights, approximating a MISR cell's multi-modal radiance distribution.
GaussianMixtureGenerator MakeMisrLikeCell(const MisrCellSpec& spec,
                                          Rng* rng);

/// Convenience: one N-point MISR-like cell dataset. A fresh mixture spec is
/// derived from `rng`, then sampled. This is the workload behind Table 2 /
/// Figures 6-8.
Dataset GenerateMisrLikeCell(size_t n, Rng* rng,
                             const MisrCellSpec& spec = {});

/// Uniform noise over a box (used by tests and ablations).
Dataset GenerateUniform(size_t n, size_t dim, double lo, double hi,
                        Rng* rng);

/// Well-separated spherical clusters with known ground truth, for
/// correctness tests (returns the true centers via `out_centers`).
Dataset GenerateSeparatedClusters(size_t n, size_t dim, size_t k,
                                  double separation, double stddev,
                                  Rng* rng,
                                  std::vector<std::vector<double>>*
                                      out_centers = nullptr);

}  // namespace pmkm

#endif  // PMKM_DATA_GENERATOR_H_
