// WeightedDataset: points with per-point weights.
//
// This is the wire type between the partial and merge k-means operators: a
// partial step emits k centroids, each weighted by the number of original
// points assigned to it (paper §3.2).

#ifndef PMKM_DATA_WEIGHTED_H_
#define PMKM_DATA_WEIGHTED_H_

#include <numeric>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace pmkm {

/// A dataset where point i carries weight weights()[i] (> 0 by convention;
/// weight 0 marks a starved centroid that consumers may drop).
class WeightedDataset {
 public:
  explicit WeightedDataset(size_t dim = 1) : points_(dim) {}

  /// Wraps an existing dataset with all weights set to 1 (a plain dataset
  /// is a weighted dataset with unit weights).
  static WeightedDataset FromUnweighted(Dataset points) {
    WeightedDataset out(points.dim());
    out.weights_.assign(points.size(), 1.0);
    out.points_ = std::move(points);
    return out;
  }

  /// Wraps points and weights; sizes must match.
  static Result<WeightedDataset> Create(Dataset points,
                                        std::vector<double> weights) {
    if (points.size() != weights.size()) {
      return Status::InvalidArgument(
          "weight count does not match point count");
    }
    WeightedDataset out(points.dim());
    out.points_ = std::move(points);
    out.weights_ = std::move(weights);
    return out;
  }

  size_t dim() const { return points_.dim(); }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const Dataset& points() const { return points_; }
  Dataset& mutable_points() { return points_; }
  const std::vector<double>& weights() const { return weights_; }

  std::span<const double> Row(size_t i) const { return points_.Row(i); }
  double weight(size_t i) const { return weights_[i]; }

  void Append(std::span<const double> point, double weight) {
    points_.Append(point);
    weights_.push_back(weight);
  }

  /// Appends all weighted points of `other`.
  void AppendAll(const WeightedDataset& other) {
    points_.AppendAll(other.points());
    weights_.insert(weights_.end(), other.weights_.begin(),
                    other.weights_.end());
  }

  /// Sum of all weights (for a partial-k-means output this equals the
  /// partition's point count N_j, paper §3.2).
  double TotalWeight() const {
    return std::accumulate(weights_.begin(), weights_.end(), 0.0);
  }

 private:
  Dataset points_;
  std::vector<double> weights_;
};

}  // namespace pmkm

#endif  // PMKM_DATA_WEIGHTED_H_
