#include "data/grid.h"

#include <cmath>

namespace pmkm {

std::string GridCellId::ToString() const {
  return "cell_" + std::to_string(lat_index) + "_" +
         std::to_string(lon_index);
}

GridIndex::GridIndex(size_t dim, double cell_degrees)
    : dim_(dim), cell_degrees_(cell_degrees) {
  PMKM_CHECK(dim >= 2);
  PMKM_CHECK(cell_degrees > 0.0);
}

GridCellId GridIndex::CellOf(double lat_deg, double lon_deg) const {
  // Wrap longitude into [-180, 180).
  double lon = std::fmod(lon_deg + 180.0, 360.0);
  if (lon < 0) lon += 360.0;
  lon -= 180.0;
  // Clamp latitude so the pole falls into the last row.
  double lat = lat_deg;
  if (lat >= 90.0) lat = std::nextafter(90.0, 0.0);
  if (lat < -90.0) lat = -90.0;
  return GridCellId{
      static_cast<int32_t>(std::floor(lat / cell_degrees_)),
      static_cast<int32_t>(std::floor(lon / cell_degrees_)),
  };
}

Status GridIndex::Add(std::span<const double> point) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  if (!std::isfinite(point[0]) || !std::isfinite(point[1])) {
    return Status::InvalidArgument("non-finite lat/lon coordinate");
  }
  const GridCellId id = CellOf(point[0], point[1]);
  auto [it, inserted] = buckets_.try_emplace(id, Dataset(dim_));
  it->second.Append(point);
  ++num_points_;
  return Status::OK();
}

Status GridIndex::AddAll(const Dataset& data) {
  if (data.dim() != dim_) {
    return Status::InvalidArgument("dataset dimensionality mismatch");
  }
  for (size_t i = 0; i < data.size(); ++i) {
    PMKM_RETURN_NOT_OK(Add(data.Row(i)));
  }
  return Status::OK();
}

std::vector<GridCellId> GridIndex::CellIds() const {
  std::vector<GridCellId> ids;
  ids.reserve(buckets_.size());
  for (const auto& [id, bucket] : buckets_) ids.push_back(id);
  return ids;
}

Result<const Dataset*> GridIndex::Bucket(GridCellId id) const {
  auto it = buckets_.find(id);
  if (it == buckets_.end()) {
    return Status::NotFound("no points in cell " + id.ToString());
  }
  return &it->second;
}

std::map<GridCellId, Dataset> GridIndex::TakeBuckets() {
  num_points_ = 0;
  return std::exchange(buckets_, {});
}

}  // namespace pmkm
