// Spatial slicing strategies — the paper's §6 future work: "data cells can
// be partitioned into spatially non-overlapping subcells, or a mostly
// overlapping cells as in our test cases, or in a 'salami'-type slicing
// strategy".
//
// SplitRandom (dataset.h) is the paper's "mostly overlapping" test setup
// and SplitContiguous is the salami strategy; this module adds the
// spatially non-overlapping subcell split.

#ifndef PMKM_DATA_SLICING_H_
#define PMKM_DATA_SLICING_H_

#include <vector>

#include "data/dataset.h"

namespace pmkm {

/// Splits `cell` into at most grid_side × grid_side spatially disjoint
/// subcells by bucketing coordinates (dim `x_dim`, `y_dim`) on a uniform
/// grid over their bounding box. Empty subcells are dropped, so fewer than
/// grid_side² parts may be returned; points on the max edge fall into the
/// last row/column. Requires grid_side ≥ 1 and x_dim ≠ y_dim < dim.
Result<std::vector<Dataset>> SplitSpatialGrid(const Dataset& cell,
                                              size_t grid_side,
                                              size_t x_dim = 0,
                                              size_t y_dim = 1);

/// Splits `cell` into `num_parts` stripes by sorting on one coordinate —
/// a 1-D "salami" slicer that, unlike SplitContiguous, cuts along a
/// spatial axis rather than arrival order. Stripe sizes differ by at most
/// one point.
Result<std::vector<Dataset>> SplitStripes(const Dataset& cell,
                                          size_t num_parts,
                                          size_t sort_dim = 0);

}  // namespace pmkm

#endif  // PMKM_DATA_SLICING_H_
