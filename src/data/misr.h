// MISR swath simulator.
//
// Substitution for the proprietary MISR L2 product (DESIGN.md §5): the real
// instrument records stripes of the rotating earth (paper Fig. 1), so the
// points of one grid cell are scattered across many files/orbits and arrive
// in essentially random order. This simulator reproduces that acquisition
// geometry: a sun-synchronous-like ground track advances in time while the
// earth rotates underneath, and each footprint emits a 6-attribute
// radiance-like vector drawn from a smoothly varying regional mixture.

#ifndef PMKM_DATA_MISR_H_
#define PMKM_DATA_MISR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/grid.h"

namespace pmkm {

/// Orbit/instrument parameters. Defaults are scaled-down but geometrically
/// faithful: ~98.3° inclination polar orbit, ~360 km swath (MISR's width),
/// 14.5 orbits/day with westward node regression covering the globe over a
/// repeat cycle.
struct MisrSimConfig {
  size_t num_attributes = 6;      // radiance channels per footprint
  double inclination_deg = 98.3;  // orbit inclination
  double swath_width_deg = 3.3;   // swath width in longitude-equivalent deg
  size_t footprints_per_scan = 8; // cross-track samples per along-track step
  double along_track_step_deg = 0.25;  // latitude advance per scan line
  double node_regression_deg = 24.8;   // westward shift per orbit
  size_t scene_grid_degrees = 30;      // size of a climate "region"
  double noise_stddev = 1.5;           // sensor noise
  uint64_t seed = 42;
};

/// Simulated footprint stream. Each point is
/// [lat, lon, a0..a(num_attributes-1)], so dim = 2 + num_attributes.
class MisrSwathSimulator {
 public:
  explicit MisrSwathSimulator(const MisrSimConfig& config = {});

  size_t dim() const { return 2 + config_.num_attributes; }
  const MisrSimConfig& config() const { return config_; }

  /// Emits the footprints of `num_orbits` consecutive orbits.
  Dataset SimulateOrbits(size_t num_orbits);

  /// Emits footprints until at least `min_points` are produced.
  Dataset SimulatePoints(size_t min_points);

  /// Convenience: simulate `num_orbits` orbits and bin the footprints into
  /// a grid index of the given cell size.
  Result<GridIndex> SimulateToGrid(size_t num_orbits,
                                   double cell_degrees = 1.0);

 private:
  /// Radiance vector for a footprint at (lat, lon): a regional multi-modal
  /// scene signature plus sensor noise.
  void EmitAttributes(double lat, double lon, double* out);

  /// Deterministic per-region scene parameters (hashed from region id).
  struct Scene {
    double base;        // regional mean brightness
    double amplitude;   // modal spread
    int num_modes;      // surface types in the region
  };
  Scene SceneFor(double lat, double lon) const;

  MisrSimConfig config_;
  Rng rng_;
  double orbit_phase_deg_ = 0.0;  // ascending-node longitude
};

}  // namespace pmkm

#endif  // PMKM_DATA_MISR_H_
