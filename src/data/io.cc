#include "data/io.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/fault.h"
#include "data/manifest.h"

namespace pmkm {
namespace internal {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace internal

namespace {

constexpr uint32_t kMagic = 0x424b4d50;  // "PMKB" little-endian
constexpr uint32_t kVersion = 1;

// Upper bound on the per-point dimensionality a bucket header may claim.
// Real workloads are low-dimensional (the paper uses <= 64); the bound
// exists so a corrupt/hostile header cannot request absurd allocations.
constexpr uint32_t kMaxBucketDim = 1u << 20;

struct Header {
  uint32_t magic;
  uint32_t version;
  uint32_t dim;
  int32_t lat;
  int32_t lon;
  uint32_t pad;
  uint64_t count;
};
static_assert(sizeof(Header) == 32, "header layout is part of the format");

// Crash-safe publication: data is staged in a `<path>.tmp` sibling and
// renamed into place only once complete, so a killed process never leaves
// a half-written bucket at the destination path. Durability (not just
// atomicity) needs the fsync pair around the rename: without fsyncing the
// staged file first, the rename can publish a name whose *contents* are
// still unflushed after power loss; without fsyncing the parent directory
// after, the directory entry itself can vanish.
std::string TmpPath(const std::string& path) { return path + ".tmp"; }

Status CommitTmp(const std::string& path) {
  PMKM_RETURN_NOT_OK(FsyncPath(TmpPath(path)));
  PMKM_FAULT_POINT("io.rename");
  std::error_code ec;
  std::filesystem::rename(TmpPath(path), path, ec);
  if (ec) {
    return Status::IOError("cannot rename into place: " + path + " (" +
                           ec.message() + ")");
  }
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  return FsyncPath(parent.empty() ? std::string(".") : parent.string());
}

}  // namespace

Status WriteGridBucket(const std::string& path, const GridBucket& bucket) {
  PMKM_RETURN_NOT_OK(FaultRegistry::Global().Hit("io.write"));
  const std::string tmp = TmpPath(path);
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + tmp);

  Header h{};
  h.magic = kMagic;
  h.version = kVersion;
  h.dim = static_cast<uint32_t>(bucket.points.dim());
  h.lat = bucket.cell.lat_index;
  h.lon = bucket.cell.lon_index;
  h.pad = 0;
  h.count = bucket.points.size();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));

  const auto& values = bucket.points.values();
  const size_t bytes = values.size() * sizeof(double);
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(bytes));

  const uint64_t hash =
      internal::Fnv1a64(values.data(), bytes, internal::kFnvOffset);
  out.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
  out.flush();
  out.close();
  if (!out) return Status::IOError("short write: " + tmp);
  return CommitTmp(path);
}

Result<GridBucket> ReadGridBucket(const std::string& path) {
  PMKM_ASSIGN_OR_RETURN(GridBucketReader reader,
                        GridBucketReader::Open(path));
  GridBucket bucket;
  bucket.cell = reader.cell();
  bucket.points = Dataset(reader.dim());
  bucket.points.Reserve(
      std::min(reader.total_points(), reader.available_points()));
  Dataset chunk(reader.dim());
  for (;;) {
    PMKM_ASSIGN_OR_RETURN(bool more, reader.Next(1 << 16, &chunk));
    if (!more) break;
    bucket.points.AppendAll(chunk);
  }
  return bucket;
}

Result<std::vector<std::string>> WriteGridBuckets(const std::string& dir,
                                                  const GridIndex& index) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory: " + dir);

  std::vector<std::string> paths;
  paths.reserve(index.num_cells());
  for (const auto& [id, points] : index.buckets()) {
    GridBucket bucket;
    bucket.cell = id;
    bucket.points = points;
    const std::string path = dir + "/" + id.ToString() + ".pmkb";
    PMKM_RETURN_NOT_OK(WriteGridBucket(path, bucket));
    paths.push_back(path);
  }
  return paths;
}

Result<GridBucketWriter> GridBucketWriter::Open(const std::string& path,
                                                GridCellId cell,
                                                size_t dim) {
  if (dim == 0) {
    return Status::InvalidArgument("dimensionality must be >= 1");
  }
  // Stage in <path>.tmp; Close() renames into place. An unclosed (crashed)
  // writer leaves no file at the destination path at all.
  auto out = std::make_shared<std::ofstream>(
      TmpPath(path), std::ios::binary | std::ios::trunc);
  if (!*out) {
    return Status::IOError("cannot open for writing: " + TmpPath(path));
  }

  Header h{};
  h.magic = kMagic;
  h.version = kVersion;
  h.dim = static_cast<uint32_t>(dim);
  h.lat = cell.lat_index;
  h.lon = cell.lon_index;
  h.pad = 0;
  h.count = 0;  // patched on Close()
  out->write(reinterpret_cast<const char*>(&h), sizeof(h));
  if (!*out) return Status::IOError("short header write: " + path);

  GridBucketWriter writer;
  writer.out_ = std::move(out);
  writer.path_ = path;
  writer.dim_ = dim;
  writer.running_hash_ = internal::kFnvOffset;
  return writer;
}

Status GridBucketWriter::Append(std::span<const double> point) {
  if (out_ == nullptr) {
    return Status::FailedPrecondition("writer already closed");
  }
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  const size_t bytes = dim_ * sizeof(double);
  out_->write(reinterpret_cast<const char*>(point.data()),
              static_cast<std::streamsize>(bytes));
  if (!*out_) return Status::IOError("short write: " + path_);
  running_hash_ = internal::Fnv1a64(point.data(), bytes, running_hash_);
  ++points_written_;
  return Status::OK();
}

Status GridBucketWriter::AppendAll(const Dataset& points) {
  if (points.dim() != dim_) {
    return Status::InvalidArgument("dataset dimensionality mismatch");
  }
  for (size_t i = 0; i < points.size(); ++i) {
    PMKM_RETURN_NOT_OK(Append(points.Row(i)));
  }
  return Status::OK();
}

Status GridBucketWriter::Close() {
  if (out_ == nullptr) {
    return Status::FailedPrecondition("writer already closed");
  }
  PMKM_RETURN_NOT_OK(FaultRegistry::Global().Hit("io.write"));
  out_->write(reinterpret_cast<const char*>(&running_hash_),
              sizeof(running_hash_));
  // Back-patch the point count in the header.
  const uint64_t count = points_written_;
  out_->seekp(offsetof(Header, count), std::ios::beg);
  out_->write(reinterpret_cast<const char*>(&count), sizeof(count));
  out_->flush();
  out_->close();
  const bool ok = static_cast<bool>(*out_);
  out_.reset();
  if (!ok) return Status::IOError("failed to finalize: " + path_);
  // Atomically publish the finished file.
  return CommitTmp(path_);
}

Result<GridBucketReader> GridBucketReader::Open(const std::string& path) {
  PMKM_FAULT_POINT("io.read");
  auto in = std::make_shared<std::ifstream>(path, std::ios::binary);
  if (!*in) return Status::IOError("cannot open for reading: " + path);

  Header h{};
  in->read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!*in) return Status::IOError("short header: " + path);
  if (h.magic != kMagic) {
    return Status::IOError("bad magic (not a grid bucket file): " + path);
  }
  if (h.version != kVersion) {
    return Status::IOError("unsupported bucket version " +
                           std::to_string(h.version) + ": " + path);
  }
  if (h.dim == 0) return Status::IOError("zero dimensionality: " + path);
  if (h.dim > kMaxBucketDim) {
    return Status::IOError("implausible dimensionality " +
                           std::to_string(h.dim) +
                           " (corrupt header): " + path);
  }
  GridBucketReader reader;
  reader.in_ = std::move(in);
  reader.path_ = path;
  reader.cell_ = GridCellId{h.lat, h.lon};
  reader.dim_ = h.dim;
  reader.total_points_ = h.count;
  // How many whole points the file can actually hold past the header,
  // independent of what the header claims. Next() bounds its buffer by
  // this, so a corrupt/hostile count never drives an allocation. The
  // division cannot overflow or divide by zero: 0 < dim <= kMaxBucketDim.
  std::error_code size_ec;
  const uint64_t file_size = std::filesystem::file_size(path, size_ec);
  if (!size_ec && file_size >= sizeof(Header)) {
    reader.available_points_ = static_cast<size_t>(
        (file_size - sizeof(Header)) /
        (static_cast<uint64_t>(h.dim) * sizeof(double)));
  } else {
    // Unsizeable stream (or racing writer): fall back to trusting the
    // header; truncation still surfaces as a short read in Next().
    reader.available_points_ = h.count;
  }
  reader.running_hash_ = internal::kFnvOffset;
  return reader;
}

Result<bool> GridBucketReader::Next(size_t max_points, Dataset* out) {
  PMKM_CHECK(out != nullptr);
  if (max_points == 0) {
    return Status::InvalidArgument("max_points must be > 0");
  }
  PMKM_FAULT_POINT("io.read");
  *out = Dataset(dim_);
  if (points_read_ >= total_points_) {
    // Verify trailer checksum exactly once, on first end-of-stream call.
    if (in_) {
      uint64_t stored = 0;
      in_->read(reinterpret_cast<char*>(&stored), sizeof(stored));
      if (!*in_) return Status::IOError("missing checksum: " + path_);
      if (stored != running_hash_) {
        return Status::IOError("checksum mismatch (corrupt bucket): " +
                               path_);
      }
      in_.reset();
    }
    return false;
  }
  const size_t take = std::min(max_points, total_points_ - points_read_);
  if (points_read_ + take > available_points_) {
    // The file cannot hold what the header promised; report the same
    // error a short read would, without sizing a buffer from the header.
    return Status::IOError("truncated bucket payload: " + path_);
  }
  std::vector<double> buf(take * dim_);
  in_->read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size() * sizeof(double)));
  if (!*in_) {
    return Status::IOError("truncated bucket payload: " + path_);
  }
  running_hash_ = internal::Fnv1a64(
      buf.data(), buf.size() * sizeof(double), running_hash_);
  points_read_ += take;
  PMKM_ASSIGN_OR_RETURN(*out, Dataset::FromFlat(dim_, std::move(buf)));
  return true;
}

}  // namespace pmkm
