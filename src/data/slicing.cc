#include "data/slicing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pmkm {

Result<std::vector<Dataset>> SplitSpatialGrid(const Dataset& cell,
                                              size_t grid_side,
                                              size_t x_dim, size_t y_dim) {
  if (grid_side == 0) {
    return Status::InvalidArgument("grid_side must be >= 1");
  }
  if (x_dim >= cell.dim() || y_dim >= cell.dim() || x_dim == y_dim) {
    return Status::InvalidArgument("invalid spatial dimensions");
  }
  if (cell.empty()) return std::vector<Dataset>{};

  double min_x = cell(0, x_dim), max_x = min_x;
  double min_y = cell(0, y_dim), max_y = min_y;
  for (size_t i = 1; i < cell.size(); ++i) {
    min_x = std::min(min_x, cell(i, x_dim));
    max_x = std::max(max_x, cell(i, x_dim));
    min_y = std::min(min_y, cell(i, y_dim));
    max_y = std::max(max_y, cell(i, y_dim));
  }
  const double span_x = max_x - min_x;
  const double span_y = max_y - min_y;

  auto bucket_of = [&](double v, double lo, double span) -> size_t {
    if (span <= 0.0) return 0;  // degenerate axis: single column/row
    const double u = (v - lo) / span;  // in [0, 1]
    const size_t b = static_cast<size_t>(u * static_cast<double>(grid_side));
    return std::min(b, grid_side - 1);
  };

  std::vector<Dataset> parts(grid_side * grid_side,
                             Dataset(cell.dim()));
  for (size_t i = 0; i < cell.size(); ++i) {
    const size_t bx = bucket_of(cell(i, x_dim), min_x, span_x);
    const size_t by = bucket_of(cell(i, y_dim), min_y, span_y);
    parts[by * grid_side + bx].Append(cell.Row(i));
  }
  std::erase_if(parts, [](const Dataset& d) { return d.empty(); });
  return parts;
}

Result<std::vector<Dataset>> SplitStripes(const Dataset& cell,
                                          size_t num_parts,
                                          size_t sort_dim) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be >= 1");
  }
  if (sort_dim >= cell.dim()) {
    return Status::InvalidArgument("sort_dim out of range");
  }
  std::vector<size_t> order(cell.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return cell(a, sort_dim) < cell(b, sort_dim);
  });

  std::vector<Dataset> parts;
  parts.reserve(num_parts);
  const size_t n = cell.size();
  const size_t base = n / num_parts;
  const size_t extra = n % num_parts;
  size_t pos = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    const size_t take = base + (p < extra ? 1 : 0);
    Dataset part(cell.dim());
    part.Reserve(take);
    for (size_t i = 0; i < take; ++i) part.Append(cell.Row(order[pos++]));
    parts.push_back(std::move(part));
  }
  std::erase_if(parts, [](const Dataset& d) { return d.empty(); });
  return parts;
}

}  // namespace pmkm
