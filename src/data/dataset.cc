#include "data/dataset.h"

#include <algorithm>
#include <numeric>

namespace pmkm {

Result<Dataset> Dataset::FromFlat(size_t dim, std::vector<double> values) {
  if (dim == 0) {
    return Status::InvalidArgument("dataset dimensionality must be >= 1");
  }
  if (values.size() % dim != 0) {
    return Status::InvalidArgument(
        "flat value count is not a multiple of the dimensionality");
  }
  Dataset out(dim);
  out.values_ = std::move(values);
  return out;
}

Dataset Dataset::Slice(size_t begin, size_t end) const {
  PMKM_CHECK(begin <= end && end <= size());
  Dataset out(dim_);
  out.values_.assign(values_.begin() + begin * dim_,
                     values_.begin() + end * dim_);
  return out;
}

std::vector<double> Dataset::Mean() const {
  PMKM_CHECK(!empty());
  std::vector<double> mean(dim_, 0.0);
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    const double* row = values_.data() + i * dim_;
    for (size_t d = 0; d < dim_; ++d) mean[d] += row[d];
  }
  for (double& m : mean) m /= static_cast<double>(n);
  return mean;
}

void Dataset::Shuffle(Rng* rng) {
  const size_t n = size();
  if (n < 2) return;
  std::vector<double> tmp(dim_);
  for (size_t i = n - 1; i > 0; --i) {
    const size_t j = rng->UniformInt(i + 1);
    if (i == j) continue;
    double* a = values_.data() + i * dim_;
    double* b = values_.data() + j * dim_;
    std::swap_ranges(a, a + dim_, b);
  }
}

std::vector<Dataset> SplitRandom(const Dataset& data, size_t num_parts,
                                 Rng* rng) {
  PMKM_CHECK(num_parts >= 1);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng->UniformInt(i)]);
  }
  std::vector<Dataset> parts;
  parts.reserve(num_parts);
  const size_t n = data.size();
  const size_t base = n / num_parts;
  const size_t extra = n % num_parts;
  size_t pos = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    const size_t take = base + (p < extra ? 1 : 0);
    Dataset part(data.dim());
    part.Reserve(take);
    for (size_t i = 0; i < take; ++i) {
      part.Append(data.Row(order[pos++]));
    }
    parts.push_back(std::move(part));
  }
  return parts;
}

std::vector<Dataset> SplitContiguous(const Dataset& data, size_t num_parts) {
  PMKM_CHECK(num_parts >= 1);
  std::vector<Dataset> parts;
  parts.reserve(num_parts);
  const size_t n = data.size();
  const size_t base = n / num_parts;
  const size_t extra = n % num_parts;
  size_t pos = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    const size_t take = base + (p < extra ? 1 : 0);
    parts.push_back(data.Slice(pos, pos + take));
    pos += take;
  }
  return parts;
}

}  // namespace pmkm
