#include "data/csv.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace pmkm {
namespace {

// Splits one CSV line into numeric fields. Returns false if any field is
// not a finite number.
bool ParseNumericLine(const std::string& line,
                      std::vector<double>* fields) {
  fields->clear();
  size_t pos = 0;
  while (pos <= line.size()) {
    size_t comma = line.find(',', pos);
    if (comma == std::string::npos) comma = line.size();
    // Trim whitespace.
    size_t b = pos, e = comma;
    while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1])))
      --e;
    if (b == e) return false;  // empty field
    const std::string token = line.substr(b, e - b);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    fields->push_back(v);
    if (comma == line.size()) break;
    pos = comma + 1;
  }
  return !fields->empty();
}

Status WriteRows(const std::string& path, size_t dim, size_t rows,
                 const CsvOptions& options, bool weighted,
                 const double* values, const double* weights) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  char buf[64];
  if (options.header) {
    for (size_t d = 0; d < dim; ++d) {
      out << (d > 0 ? "," : "") << "a" << d;
    }
    if (weighted) out << ",weight";
    out << "\n";
  }
  for (size_t i = 0; i < rows; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      std::snprintf(buf, sizeof(buf), "%.*g", options.precision,
                    values[i * dim + d]);
      out << (d > 0 ? "," : "") << buf;
    }
    if (weighted) {
      std::snprintf(buf, sizeof(buf), "%.*g", options.precision,
                    weights[i]);
      out << "," << buf;
    }
    out << "\n";
  }
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

}  // namespace

Status WriteCsv(const std::string& path, const Dataset& data,
                const CsvOptions& options) {
  return WriteRows(path, data.dim(), data.size(), options,
                   /*weighted=*/false, data.data(), nullptr);
}

Status WriteWeightedCsv(const std::string& path,
                        const WeightedDataset& data,
                        const CsvOptions& options) {
  return WriteRows(path, data.dim(), data.size(), options,
                   /*weighted=*/true, data.points().data(),
                   data.weights().data());
}

Result<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string line;
  std::vector<double> fields;
  size_t dim = 0;
  std::vector<double> values;
  size_t line_no = 0;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    if (!ParseNumericLine(line, &fields)) {
      if (first_content_line) {
        first_content_line = false;  // header row; skip
        continue;
      }
      return Status::InvalidArgument(
          "non-numeric CSV row at line " + std::to_string(line_no) +
          " in " + path);
    }
    if (dim == 0) {
      dim = fields.size();
    } else if (fields.size() != dim) {
      return Status::InvalidArgument(
          "inconsistent column count at line " + std::to_string(line_no) +
          " in " + path);
    }
    first_content_line = false;
    values.insert(values.end(), fields.begin(), fields.end());
  }
  if (dim == 0) {
    return Status::InvalidArgument("no numeric rows in " + path);
  }
  return Dataset::FromFlat(dim, std::move(values));
}

Result<WeightedDataset> ReadWeightedCsv(const std::string& path) {
  PMKM_ASSIGN_OR_RETURN(Dataset raw, ReadCsv(path));
  if (raw.dim() < 2) {
    return Status::InvalidArgument(
        "weighted CSV needs at least one attribute plus the weight "
        "column: " +
        path);
  }
  const size_t dim = raw.dim() - 1;
  WeightedDataset out(dim);
  for (size_t i = 0; i < raw.size(); ++i) {
    const auto row = raw.Row(i);
    const double w = row[dim];
    if (w <= 0.0) {
      return Status::InvalidArgument(
          "non-positive weight at data row " + std::to_string(i) + " in " +
          path);
    }
    out.Append(row.subspan(0, dim), w);
  }
  return out;
}

}  // namespace pmkm
