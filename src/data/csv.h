// CSV import/export for datasets and centroid sets — the interop path for
// users whose measurements live outside the pmkm binary formats (R,
// pandas, spreadsheets). Deliberately small: comma separator, optional
// header row, no quoting (the data are numeric matrices).

#ifndef PMKM_DATA_CSV_H_
#define PMKM_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/weighted.h"

namespace pmkm {

struct CsvOptions {
  /// On write: emit "a0,a1,..." as the first row. On read: skip the first
  /// row if it does not parse as numbers (auto-detect).
  bool header = true;

  /// Output precision (significant digits) for doubles.
  int precision = 17;
};

/// Writes `data` as one row per point.
Status WriteCsv(const std::string& path, const Dataset& data,
                const CsvOptions& options = {});

/// Writes weighted points with the weight as the extra last column
/// ("weight" in the header).
Status WriteWeightedCsv(const std::string& path,
                        const WeightedDataset& data,
                        const CsvOptions& options = {});

/// Reads a numeric CSV into a dataset. All rows must have the same column
/// count; a non-numeric first row is treated as a header and skipped.
/// Empty lines are ignored.
Result<Dataset> ReadCsv(const std::string& path);

/// Reads a CSV written by WriteWeightedCsv (last column = weight).
Result<WeightedDataset> ReadWeightedCsv(const std::string& path);

}  // namespace pmkm

#endif  // PMKM_DATA_CSV_H_
