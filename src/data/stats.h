// Dataset profiling: per-attribute summaries and the attribute correlation
// matrix. Backs the inspect tool and sanity checks on generated workloads
// (the MISR-like cells must show the cross-channel correlation the
// compression approach exploits — "capture the high order interaction
// between the attributes", paper §1).

#ifndef PMKM_DATA_STATS_H_
#define PMKM_DATA_STATS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace pmkm {

/// Moments and range of one attribute.
struct AttributeStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population (1/N)
};

/// Full profile of a dataset.
struct DatasetProfile {
  size_t num_points = 0;
  size_t dim = 0;
  std::vector<AttributeStats> attributes;

  /// Row-major dim × dim Pearson correlation matrix. Attributes with zero
  /// variance correlate 1 with themselves and 0 with everything else.
  std::vector<double> correlation;

  double Correlation(size_t a, size_t b) const {
    return correlation[a * dim + b];
  }

  /// Multi-line human-readable rendering (used by pmkm_inspect).
  std::string ToString() const;
};

/// Profiles `data` in two passes. Fails on an empty dataset.
Result<DatasetProfile> ProfileDataset(const Dataset& data);

}  // namespace pmkm

#endif  // PMKM_DATA_STATS_H_
