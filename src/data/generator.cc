#include "data/generator.h"

#include <algorithm>
#include <cmath>

namespace pmkm {

Result<GaussianMixtureGenerator> GaussianMixtureGenerator::Create(
    std::vector<GaussianComponent> components) {
  if (components.empty()) {
    return Status::InvalidArgument("mixture needs at least one component");
  }
  const size_t dim = components[0].mean.size();
  if (dim == 0) {
    return Status::InvalidArgument("component dimensionality must be >= 1");
  }
  double total = 0.0;
  for (const auto& c : components) {
    if (c.mean.size() != dim || c.stddev.size() != dim) {
      return Status::InvalidArgument(
          "all components must share one dimensionality");
    }
    if (c.weight <= 0.0) {
      return Status::InvalidArgument("component weights must be positive");
    }
    for (double s : c.stddev) {
      if (s < 0.0) {
        return Status::InvalidArgument("stddev must be non-negative");
      }
    }
    total += c.weight;
  }
  GaussianMixtureGenerator gen;
  gen.dim_ = dim;
  gen.components_ = std::move(components);
  gen.cumulative_.reserve(gen.components_.size());
  double acc = 0.0;
  for (const auto& c : gen.components_) {
    acc += c.weight / total;
    gen.cumulative_.push_back(acc);
  }
  gen.cumulative_.back() = 1.0;  // guard against FP drift
  return gen;
}

Dataset GaussianMixtureGenerator::Sample(size_t n, Rng* rng) const {
  Dataset out(dim_);
  out.Reserve(n);
  std::vector<double> point(dim_);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng->UniformDouble();
    const size_t c = static_cast<size_t>(
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
        cumulative_.begin());
    const auto& comp = components_[std::min(c, components_.size() - 1)];
    for (size_t d = 0; d < dim_; ++d) {
      point[d] = rng->Normal(comp.mean[d], comp.stddev[d]);
    }
    out.Append(point);
  }
  return out;
}

GaussianMixtureGenerator MakeMisrLikeCell(const MisrCellSpec& spec,
                                          Rng* rng) {
  PMKM_CHECK(spec.dim >= 1);
  PMKM_CHECK(spec.num_components >= 1);
  std::vector<GaussianComponent> components;
  components.reserve(spec.num_components);
  for (size_t c = 0; c < spec.num_components; ++c) {
    GaussianComponent comp;
    comp.mean.resize(spec.dim);
    comp.stddev.resize(spec.dim);
    // Shared latent factor: a bright scene is bright at every view angle,
    // which gives the strong cross-attribute correlation MISR radiances
    // show. Each attribute adds an independent offset scaled by
    // (1 - correlation).
    const double latent = rng->Uniform(0.0, spec.value_range);
    for (size_t d = 0; d < spec.dim; ++d) {
      const double offset = rng->Uniform(0.0, spec.value_range);
      comp.mean[d] =
          spec.correlation * latent + (1.0 - spec.correlation) * offset;
      comp.stddev[d] = rng->Uniform(spec.min_stddev, spec.max_stddev);
    }
    // Zipf-ish weights: a few dominant scene types plus a long tail.
    comp.weight = 1.0 / static_cast<double>(c + 1);
    components.push_back(std::move(comp));
  }
  auto result = GaussianMixtureGenerator::Create(std::move(components));
  PMKM_CHECK(result.ok()) << result.status();
  return std::move(result).value();
}

Dataset GenerateMisrLikeCell(size_t n, Rng* rng, const MisrCellSpec& spec) {
  const GaussianMixtureGenerator gen = MakeMisrLikeCell(spec, rng);
  return gen.Sample(n, rng);
}

Dataset GenerateUniform(size_t n, size_t dim, double lo, double hi,
                        Rng* rng) {
  PMKM_CHECK(dim >= 1);
  Dataset out(dim);
  out.Reserve(n);
  std::vector<double> point(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) point[d] = rng->Uniform(lo, hi);
    out.Append(point);
  }
  return out;
}

Dataset GenerateSeparatedClusters(
    size_t n, size_t dim, size_t k, double separation, double stddev,
    Rng* rng, std::vector<std::vector<double>>* out_centers) {
  PMKM_CHECK(dim >= 1 && k >= 1);
  std::vector<GaussianComponent> components;
  std::vector<std::vector<double>> centers;
  components.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    GaussianComponent comp;
    comp.mean.resize(dim);
    // Centers on a diagonal lattice: guaranteed pairwise distance >=
    // separation in L2 because they differ by `separation` in coordinate 0.
    for (size_t d = 0; d < dim; ++d) {
      comp.mean[d] = static_cast<double>(c) * separation +
                     ((d == c % dim) ? separation * 0.25 : 0.0);
    }
    comp.stddev.assign(dim, stddev);
    comp.weight = 1.0;
    centers.push_back(comp.mean);
    components.push_back(std::move(comp));
  }
  auto gen = GaussianMixtureGenerator::Create(std::move(components));
  PMKM_CHECK(gen.ok()) << gen.status();
  if (out_centers != nullptr) *out_centers = std::move(centers);
  return gen->Sample(n, rng);
}

}  // namespace pmkm
