// Binary grid-bucket files.
//
// The paper assumes a preparatory scan has sorted all measurements into
// per-cell binary files ("grid buckets ... saved to disk as binary files",
// §3.1) which are then the streaming input. This module defines that file
// format:
//
//   [magic "PMKB"] [version u32] [dim u32] [lat i32] [lon i32] [count u64]
//   [count * dim  f64 little-endian row-major] [fnv1a-64 checksum u64]
//
// GridBucketReader supports chunked reads so a scan operator can stream a
// bucket without materializing it (one-look constraint).

#ifndef PMKM_DATA_IO_H_
#define PMKM_DATA_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/grid.h"

namespace pmkm {

/// One grid cell's points together with its identity.
struct GridBucket {
  GridCellId cell;
  Dataset points{1};
};

/// Writes a complete bucket file crash-safely: the bytes are staged in a
/// `<path>.tmp` sibling, fsync'd, renamed into place, and the parent
/// directory fsync'd (see data/manifest.h for the commit protocol), so a
/// killed process never leaves a half-written bucket at `path` and a
/// published bucket survives power loss.
Status WriteGridBucket(const std::string& path, const GridBucket& bucket);

/// Reads a complete bucket file, verifying magic, version and checksum.
Result<GridBucket> ReadGridBucket(const std::string& path);

/// Writes every bucket of a GridIndex into `dir` as <cell>.pmkb files and
/// returns the written paths in cell order.
Result<std::vector<std::string>> WriteGridBuckets(const std::string& dir,
                                                  const GridIndex& index);

/// Streaming writer: appends points to a bucket file without ever holding
/// the cell in memory (the staging path for TB-scale swaths). The header's
/// count field is back-patched and the checksum appended on Close().
class GridBucketWriter {
 public:
  /// Creates/truncates the `<path>.tmp` staging file and writes a
  /// provisional header; Close() publishes it to `path` via rename.
  static Result<GridBucketWriter> Open(const std::string& path,
                                       GridCellId cell, size_t dim);

  GridBucketWriter(GridBucketWriter&&) = default;
  GridBucketWriter& operator=(GridBucketWriter&&) = default;

  size_t dim() const { return dim_; }
  size_t points_written() const { return points_written_; }

  /// Appends one point (size must equal dim()).
  Status Append(std::span<const double> point);

  /// Appends a whole dataset.
  Status AppendAll(const Dataset& points);

  /// Finalizes the file: patches the count, writes the checksum, and
  /// atomically renames the `<path>.tmp` staging file into place. The
  /// writer is unusable afterwards. An unclosed writer never publishes a
  /// file at the destination path (only the .tmp staging file remains).
  Status Close();

 private:
  GridBucketWriter() = default;

  std::shared_ptr<std::ofstream> out_;
  std::string path_;
  size_t dim_ = 0;
  size_t points_written_ = 0;
  uint64_t running_hash_ = 0;
};

/// Streaming reader: yields points in file order, `max_points` at a time.
class GridBucketReader {
 public:
  /// Opens the file and parses/validates the header (not the checksum;
  /// checksum verification requires reading the full payload and is done
  /// incrementally as chunks are consumed, reported by the final Next()).
  static Result<GridBucketReader> Open(const std::string& path);

  GridCellId cell() const { return cell_; }
  size_t dim() const { return dim_; }
  size_t total_points() const { return total_points_; }
  size_t points_read() const { return points_read_; }

  /// Points the file can physically hold given its size — an upper bound
  /// on what Next() will ever deliver. Preallocate with
  /// min(total_points(), available_points()): the header's count is
  /// untrusted input and must not size an allocation on its own.
  size_t available_points() const { return available_points_; }

  /// Reads up to `max_points` further points into `*out` (replacing its
  /// contents). Returns true if points were produced, false at end of
  /// stream. Corruption (short file, checksum mismatch) yields an error.
  Result<bool> Next(size_t max_points, Dataset* out);

 private:
  GridBucketReader() = default;

  std::shared_ptr<std::ifstream> in_;  // shared: Reader is movable/copyable
  std::string path_;
  GridCellId cell_;
  size_t dim_ = 0;
  size_t total_points_ = 0;
  size_t points_read_ = 0;
  /// Points the file can physically hold (from its size), used to bound
  /// Next()'s buffer so a corrupt header cannot drive an allocation.
  size_t available_points_ = 0;
  uint64_t running_hash_ = 0;
};

namespace internal {
/// FNV-1a 64-bit over a byte buffer, chainable via `seed`.
uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed);
/// FNV-1a initial offset basis.
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
}  // namespace internal

}  // namespace pmkm

#endif  // PMKM_DATA_IO_H_
