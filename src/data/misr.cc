#include "data/misr.h"

#include <cmath>

namespace pmkm {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Integer hash (splitmix64 finalizer) for deterministic region parameters.
uint64_t HashRegion(int64_t a, int64_t b, uint64_t seed) {
  uint64_t z = seed ^ (static_cast<uint64_t>(a) * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<uint64_t>(b) * 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

MisrSwathSimulator::MisrSwathSimulator(const MisrSimConfig& config)
    : config_(config), rng_(config.seed) {
  PMKM_CHECK(config_.num_attributes >= 1);
  PMKM_CHECK(config_.footprints_per_scan >= 1);
  PMKM_CHECK(config_.along_track_step_deg > 0.0);
}

MisrSwathSimulator::Scene MisrSwathSimulator::SceneFor(double lat,
                                                       double lon) const {
  const auto g = static_cast<int64_t>(config_.scene_grid_degrees);
  const int64_t a = static_cast<int64_t>(std::floor(lat)) / g;
  const int64_t b = static_cast<int64_t>(std::floor(lon)) / g;
  const uint64_t h = HashRegion(a, b, config_.seed);
  Scene s;
  // Brightness falls off toward the poles (insolation), modulated per
  // region; amplitudes and mode counts vary regionally.
  const double lat_factor = std::cos(lat * kPi / 180.0);
  s.base = 20.0 + 60.0 * lat_factor + 20.0 * HashToUnit(h);
  s.amplitude = 5.0 + 25.0 * HashToUnit(h * 0x9e3779b97f4a7c15ULL + 1);
  s.num_modes = 2 + static_cast<int>(HashToUnit(h + 7) * 6.0);
  return s;
}

void MisrSwathSimulator::EmitAttributes(double lat, double lon,
                                        double* out) {
  const Scene scene = SceneFor(lat, lon);
  // Pick a surface type (mode) for this footprint; modes are offsets from
  // the regional base, shared across attributes (correlated channels).
  const int mode = static_cast<int>(rng_.UniformInt(
      static_cast<uint64_t>(scene.num_modes)));
  const double mode_offset =
      scene.amplitude * (static_cast<double>(mode) /
                             static_cast<double>(scene.num_modes) -
                         0.5) *
      2.0;
  const double brightness = scene.base + mode_offset;
  for (size_t d = 0; d < config_.num_attributes; ++d) {
    // View-angle dependence: later channels see slightly dimmer radiance
    // (path length), plus independent sensor noise.
    const double angle_gain = 1.0 - 0.04 * static_cast<double>(d);
    out[d] = brightness * angle_gain +
             rng_.Normal(0.0, config_.noise_stddev);
  }
}

Dataset MisrSwathSimulator::SimulateOrbits(size_t num_orbits) {
  Dataset out(dim());
  std::vector<double> point(dim());
  const double incl = config_.inclination_deg * kPi / 180.0;
  for (size_t orbit = 0; orbit < num_orbits; ++orbit) {
    // One orbit: the sub-satellite latitude sweeps a full sine period while
    // longitude advances with earth rotation folded in.
    for (double t = 0.0; t < 360.0; t += config_.along_track_step_deg) {
      const double phase = t * kPi / 180.0;
      const double max_lat = 180.0 - config_.inclination_deg;  // ~81.7°
      const double lat = (90.0 - max_lat < 90.0 ? (90.0 - (90.0 - max_lat))
                                                : 90.0) *
                         std::sin(phase);
      // Ground track longitude: node longitude + along-track component +
      // earth rotation (360° per ~14.5 orbits).
      const double lon_track = orbit_phase_deg_ +
                               std::atan2(std::cos(incl) * std::sin(phase),
                                          std::cos(phase)) *
                                   180.0 / kPi -
                               t * (360.0 / 14.5) / 360.0;
      for (size_t f = 0; f < config_.footprints_per_scan; ++f) {
        const double cross =
            (static_cast<double>(f) /
                 static_cast<double>(config_.footprints_per_scan) -
             0.5) *
            config_.swath_width_deg;
        double lon = std::fmod(lon_track + cross + 540.0, 360.0) - 180.0;
        double flat = lat + rng_.Uniform(-0.05, 0.05);
        if (flat > 89.999) flat = 89.999;
        if (flat < -90.0) flat = -90.0;
        point[0] = flat;
        point[1] = lon;
        EmitAttributes(flat, lon, point.data() + 2);
        out.Append(point);
      }
    }
    orbit_phase_deg_ -= config_.node_regression_deg;
  }
  return out;
}

Dataset MisrSwathSimulator::SimulatePoints(size_t min_points) {
  Dataset out(dim());
  while (out.size() < min_points) {
    out.AppendAll(SimulateOrbits(1));
  }
  return out;
}

Result<GridIndex> MisrSwathSimulator::SimulateToGrid(size_t num_orbits,
                                                     double cell_degrees) {
  GridIndex index(dim(), cell_degrees);
  const Dataset points = SimulateOrbits(num_orbits);
  PMKM_RETURN_NOT_OK(index.AddAll(points));
  return index;
}

}  // namespace pmkm
