// Crash-safe run journal ("manifest") — the durability substrate for
// checkpoint/restore (DESIGN.md §13).
//
// A journal is an append-only file of length-prefixed, CRC32C-checksummed
// records:
//
//   file:   [magic "PMKJ"] [version u32]
//   record: [payload_len u32] [type u32] [seq u64]
//           [payload_len bytes] [crc32c u32 over type|seq|payload]
//
// All integers are little-endian. `seq` increases by one per record; the
// sequence number of the last valid record is the journal's *epoch*.
// Appends are written with POSIX write(2) and made durable with fsync(2)
// (batched by the caller via Sync()). Recovery scans the file from the
// start and stops at the first record whose framing or checksum is
// invalid or whose sequence number breaks the contiguous chain:
// everything before that point is the last valid epoch,
// everything after (a torn append, a partial power-loss write, bit rot)
// is discarded. A writer that resumes an existing journal truncates the
// torn tail first so new records always extend a valid prefix.
//
// Complementing the journal, AtomicWriteFile publishes whole files (model
// snapshots, exports) crash-safely: stage in `<path>.tmp`, fsync the file,
// rename into place, fsync the parent directory — the same commit protocol
// as the grid-bucket writers in data/io.h, with the durability gap closed
// (a rename that is never fsync'd can vanish after power loss).

#ifndef PMKM_DATA_MANIFEST_H_
#define PMKM_DATA_MANIFEST_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace pmkm {

/// One decoded journal record.
struct JournalRecord {
  uint32_t type = 0;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

/// What RecoverJournal found on disk.
struct JournalRecovery {
  /// All consecutively valid records, in file order.
  std::vector<JournalRecord> records;

  /// Byte offset of the end of the valid prefix (= file size when clean).
  uint64_t valid_bytes = 0;

  /// Sequence number of the last valid record (0 when none): the epoch
  /// recovery landed on.
  uint64_t epoch = 0;

  /// True when bytes past the valid prefix were discarded (torn append,
  /// truncated record, checksum mismatch).
  bool torn_tail = false;

  /// Human-readable reason the scan stopped, when torn_tail is set.
  std::string tail_error;
};

/// Scans `path` and returns every valid record plus where the valid prefix
/// ends. A missing file is an empty (not erroneous) recovery; corruption
/// is never an error — it only bounds the valid prefix. Only a file that
/// exists but cannot be opened/read yields an error.
Result<JournalRecovery> RecoverJournal(const std::string& path);

/// Append-only journal writer over a POSIX fd.
///
/// Open() recovers the existing journal (if any), truncates any torn tail
/// so appends extend a valid prefix, and positions at the end. Not
/// thread-safe: one writer, typically owned by the single operator that
/// produces commit records.
class JournalWriter {
 public:
  /// Opens (creating if needed) the journal at `path`. With `truncate`,
  /// any existing content is discarded and a fresh journal header is
  /// written. The recovery the writer resumed from is available via
  /// recovered().
  static Result<JournalWriter> Open(const std::string& path,
                                    bool truncate = false);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// What Open() recovered before truncating the torn tail.
  const JournalRecovery& recovered() const { return recovered_; }

  /// Sequence number the next Append will stamp.
  uint64_t next_seq() const { return next_seq_; }

  /// Journal bytes appended by this writer (excludes recovered content).
  uint64_t bytes_appended() const { return bytes_appended_; }

  /// Appends one record (not yet durable — call Sync()). Fault sites:
  /// "journal.append" fails the write; "journal.torn" writes a partial
  /// frame and then reports the error, simulating a torn write that
  /// recovery must discard.
  Status Append(uint32_t type, std::span<const uint8_t> payload);

  /// fsync(2)s everything appended so far. Fault site: "io.fsync".
  Status Sync();

  /// Sync + close. The destructor closes without syncing (a crashed
  /// process would not have synced either); call Close() for a clean
  /// shutdown.
  Status Close();

 private:
  JournalWriter() = default;

  int fd_ = -1;
  std::string path_;
  uint64_t next_seq_ = 1;
  uint64_t bytes_appended_ = 0;
  JournalRecovery recovered_;
};

/// fsync(2)s the file or directory at `path`. Fault site: "io.fsync".
Status FsyncPath(const std::string& path);

/// Durability pair for a freshly renamed/written file: fsync the file,
/// then its parent directory (so the directory entry itself is durable).
Status FsyncFileAndDir(const std::string& path);

/// Crash-safe whole-file publication: writes `bytes` to `<path>.tmp`,
/// fsyncs, renames into place, and fsyncs the parent directory. A killed
/// process never leaves a partial file at `path`. Fault sites: "io.write",
/// "io.fsync", "io.rename".
Status AtomicWriteFile(const std::string& path,
                       std::span<const uint8_t> bytes);
Status AtomicWriteFile(const std::string& path, const std::string& bytes);

/// CRC32C (Castagnoli) over a byte buffer, chainable via `seed` (pass the
/// previous return value to continue). Used by the journal framing.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

namespace internal {
/// Journal file magic "PMKJ" and current format version, exposed for the
/// corruption tests and pmkm_inspect.
inline constexpr uint32_t kJournalMagic = 0x4a4b4d50;  // "PMKJ"
inline constexpr uint32_t kJournalVersion = 1;
/// Size of the journal file header and of a record's fixed framing.
inline constexpr size_t kJournalHeaderBytes = 8;
inline constexpr size_t kRecordFixedBytes = 20;  // len+type+seq+crc
/// Upper bound on a record payload; a corrupt length field must never
/// drive an allocation.
inline constexpr uint32_t kMaxRecordPayload = 64u << 20;  // 64 MiB
}  // namespace internal

}  // namespace pmkm

#endif  // PMKM_DATA_MANIFEST_H_
