#include "data/stats.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace pmkm {

Result<DatasetProfile> ProfileDataset(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  const size_t n = data.size();
  const size_t dim = data.dim();

  DatasetProfile profile;
  profile.num_points = n;
  profile.dim = dim;
  profile.attributes.resize(dim);

  // Pass 1: range and mean.
  for (size_t d = 0; d < dim; ++d) {
    profile.attributes[d].min = data(0, d);
    profile.attributes[d].max = data(0, d);
  }
  std::vector<double> sums(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      const double v = data(i, d);
      sums[d] += v;
      if (v < profile.attributes[d].min) profile.attributes[d].min = v;
      if (v > profile.attributes[d].max) profile.attributes[d].max = v;
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    profile.attributes[d].mean = sums[d] / static_cast<double>(n);
  }

  // Pass 2: central second moments (full covariance).
  std::vector<double> cov(dim * dim, 0.0);
  std::vector<double> centered(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      centered[d] = data(i, d) - profile.attributes[d].mean;
    }
    for (size_t a = 0; a < dim; ++a) {
      for (size_t b = a; b < dim; ++b) {
        cov[a * dim + b] += centered[a] * centered[b];
      }
    }
  }
  for (size_t a = 0; a < dim; ++a) {
    for (size_t b = a; b < dim; ++b) {
      cov[a * dim + b] /= static_cast<double>(n);
      cov[b * dim + a] = cov[a * dim + b];
    }
    profile.attributes[a].stddev = std::sqrt(std::max(0.0, cov[a * dim + a]));
  }

  profile.correlation.assign(dim * dim, 0.0);
  for (size_t a = 0; a < dim; ++a) {
    for (size_t b = 0; b < dim; ++b) {
      const double sa = profile.attributes[a].stddev;
      const double sb = profile.attributes[b].stddev;
      if (a == b) {
        profile.correlation[a * dim + b] = 1.0;
      } else if (sa > 0.0 && sb > 0.0) {
        profile.correlation[a * dim + b] = cov[a * dim + b] / (sa * sb);
      }
    }
  }
  return profile;
}

std::string DatasetProfile::ToString() const {
  std::ostringstream os;
  char buf[128];
  os << num_points << " points x " << dim << " attributes\n";
  for (size_t d = 0; d < dim; ++d) {
    const AttributeStats& a = attributes[d];
    std::snprintf(buf, sizeof(buf),
                  "  [%zu] min=%-10.3f mean=%-10.3f max=%-10.3f "
                  "stddev=%-10.3f\n",
                  d, a.min, a.mean, a.max, a.stddev);
    os << buf;
  }
  os << "  correlation:\n";
  for (size_t a = 0; a < dim; ++a) {
    os << "   ";
    for (size_t b = 0; b < dim; ++b) {
      std::snprintf(buf, sizeof(buf), " %6.2f", Correlation(a, b));
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pmkm
