// Lat/lon grid cells and the index that bins swath points into them.
//
// The paper compresses geospatial data per 1°×1° grid cell: a scan pass
// sorts points into grid buckets, and every later stage (clustering,
// compression) operates on one bucket at a time (paper §3.1).

#ifndef PMKM_DATA_GRID_H_
#define PMKM_DATA_GRID_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace pmkm {

/// Identifies one grid cell by integer indices. For the default 1° grid,
/// lat_index ∈ [-90, 89] and lon_index ∈ [-180, 179]; cell (a, b) covers
/// [a, a+1)° latitude × [b, b+1)° longitude.
struct GridCellId {
  int32_t lat_index = 0;
  int32_t lon_index = 0;

  auto operator<=>(const GridCellId&) const = default;

  /// "cell_<lat>_<lon>", used as bucket file stem.
  std::string ToString() const;
};

/// Bins points into grid cells. Points carry latitude in coordinate 0 and
/// longitude in coordinate 1; all coordinates (including lat/lon) are kept
/// in the bucket, matching the paper's cells of full measurement vectors.
class GridIndex {
 public:
  /// `cell_degrees` is the cell edge length (default 1°, like MISR).
  explicit GridIndex(size_t dim, double cell_degrees = 1.0);

  /// Cell containing the given coordinates. Latitude is clamped to
  /// [-90, 90), longitude wrapped into [-180, 180).
  GridCellId CellOf(double lat_deg, double lon_deg) const;

  /// Adds one point (point[0]=lat, point[1]=lon) to its cell's bucket.
  Status Add(std::span<const double> point);

  /// Adds every point of `data`.
  Status AddAll(const Dataset& data);

  size_t num_cells() const { return buckets_.size(); }
  size_t num_points() const { return num_points_; }
  size_t dim() const { return dim_; }
  double cell_degrees() const { return cell_degrees_; }

  /// All non-empty cells in (lat, lon) order.
  std::vector<GridCellId> CellIds() const;

  /// Bucket for `id`; NotFound if the cell has no points.
  Result<const Dataset*> Bucket(GridCellId id) const;

  const std::map<GridCellId, Dataset>& buckets() const { return buckets_; }

  /// Moves all buckets out, leaving the index empty.
  std::map<GridCellId, Dataset> TakeBuckets();

 private:
  size_t dim_;
  double cell_degrees_;
  size_t num_points_ = 0;
  std::map<GridCellId, Dataset> buckets_;
};

}  // namespace pmkm

#endif  // PMKM_DATA_GRID_H_
