// Per-operator execution accounting: the numbers behind EXPLAIN ANALYZE
// and the machine-readable run stats. Each physical operator instance owns
// one OperatorStats; only its executor thread writes it while running, and
// the executor publishes a copy into the ExecutorReport after the join —
// so the fields need no atomics.

#ifndef PMKM_OBS_STATS_H_
#define PMKM_OBS_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace pmkm {

class MetricsRegistry;
class TraceRecorder;

namespace obs {
class RunBoard;
}  // namespace obs

/// Optional observability sinks threaded through a pipeline run. All
/// pointers may be null (the default): a disabled pipeline pays one
/// pointer test per potential record and nothing else.
///
/// Deprecated as a user-facing API: prefer
/// PipelineBuilder::WithMetrics()/WithTrace()/WithDebugServer()
/// (stream/engine.h), which own the sink wiring. Populating
/// StreamExecOptions::obs directly keeps working for existing callers.
struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  /// Live run state served by the debug server's /statusz and /runz
  /// (obs/runboard.h); operators publish their stats into it per work
  /// unit. Null unless a debug server is attached.
  obs::RunBoard* board = nullptr;
  /// Identity tag for this run. Empty = the engine generates one; it ends
  /// up in log lines, the metrics export, the trace file and the
  /// checkpoint journal so artifacts of one run correlate.
  std::string run_id;

  bool enabled() const {
    return metrics != nullptr || trace != nullptr || board != nullptr;
  }
};

/// What one operator instance did during a run. Rows are the operator's
/// natural unit (points for scans and partial inputs, weighted centroids
/// for partial outputs and the merge); bytes count the payload doubles.
struct OperatorStats {
  std::string name;

  /// Distance kernel the operator's k-means fits ran on ("scalar",
  /// "avx2", "neon"); empty for operators that do no clustering (scans).
  std::string kernel;

  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;

  /// Wall time of Run() (summed across executor restarts).
  double wall_seconds = 0.0;
  /// Thread-CPU time of Run(): actual compute, excluding blocked waits.
  double cpu_seconds = 0.0;
  /// Time spent inside queue Push/Pop calls (back-pressure + starvation).
  double queue_wait_seconds = 0.0;

  /// Lloyd iterations executed by this operator's k-means fits.
  uint64_t kmeans_iterations = 0;
  /// Seed-set restarts those fits ran (R per chunk/merge).
  uint64_t kmeans_restarts = 0;

  /// Retry grants absorbed (bucket re-reads, chunk re-computes).
  uint64_t retries = 0;
  /// Executor-level operator restarts (FailurePolicy::kRetryOperator).
  uint64_t restarts = 0;
  /// Work items abandoned (quarantined buckets, dropped chunks,
  /// skipped cells).
  uint64_t items_dropped = 0;

  /// Accumulates `other` into this (used to aggregate partial clones);
  /// keeps this->name.
  void MergeFrom(const OperatorStats& other);

  /// One-line "rows=... wall=..." rendering used by EXPLAIN ANALYZE.
  std::string ToString() const;

  JsonValue ToJson() const;

  /// Publishes the scalar fields as counters "op.<name>.<field>" into a
  /// registry (called once per run, after the pipeline joins).
  void ExportTo(MetricsRegistry* registry) const;
};

/// End-of-run snapshot of one exchange queue.
struct QueueStatsSnapshot {
  std::string name;         // "points" | "centroids"
  size_t capacity = 0;
  size_t high_water_mark = 0;
  uint64_t total_pushed = 0;
};

/// Helpers shared by EXPLAIN ANALYZE and the inspect tool.
std::string FormatBytes(uint64_t bytes);
std::string FormatSeconds(double seconds);

}  // namespace pmkm

#endif  // PMKM_OBS_STATS_H_
