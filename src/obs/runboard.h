// RunBoard: the live run state the debug server serves.
//
// The engine publishes into the board as a run progresses — BeginRun with
// the run id and plan summary, per-operator OperatorStats copies after
// every chunk/cell, checkpoint state, and EndRun with the full result
// JSON — and the server's /statusz and /runz handlers read consistent
// snapshots out. The board deliberately speaks only obs-layer types
// (OperatorStats, JsonValue): the stream layer converts its
// StreamRunResult to JSON before publishing, so obs stays free of stream
// dependencies.
//
// Cost model: operators publish once per chunk/cell (hundreds to
// thousands of times per run), each publish copying one OperatorStats
// under the board mutex — far off the per-point hot path. A pipeline
// without a debug server has a null board pointer and pays one pointer
// test per potential publish.

#ifndef PMKM_OBS_RUNBOARD_H_
#define PMKM_OBS_RUNBOARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "obs/json.h"
#include "obs/stats.h"

namespace pmkm {
namespace obs {

class RunBoard {
 public:
  /// Starts a new run on the board: clears the live operator table and
  /// remembers the identity. `operator_names` fixes the table layout;
  /// operators publish into their slot index.
  void BeginRun(const std::string& run_id, const std::string& plan_summary,
                const std::vector<std::string>& operator_names)
      PMKM_EXCLUDES(mu_);

  /// Live per-operator stats; `slot` indexes into the BeginRun layout.
  /// Called by the operator's own executor thread after each work unit.
  void PublishOperator(size_t slot, const OperatorStats& stats)
      PMKM_EXCLUDES(mu_);

  /// Checkpoint/resume state as JSON (shown verbatim under /runz).
  void PublishCheckpoint(JsonValue state) PMKM_EXCLUDES(mu_);

  /// Ends the active run. `result` is the full StreamRunResult JSON (or
  /// an error object for a failed run); it stays served by /runz until
  /// the next BeginRun.
  void EndRun(bool ok, const std::string& status_message, JsonValue result)
      PMKM_EXCLUDES(mu_);

  /// Consistent copy of the live table for /statusz.
  struct StatusSnapshot {
    bool active = false;
    std::string run_id;
    std::string plan_summary;
    double run_elapsed_seconds = 0.0;  // since BeginRun (active runs)
    uint64_t runs_started = 0;
    uint64_t runs_completed = 0;
    std::string last_status;  // EndRun message of the last finished run
    std::vector<OperatorStats> operators;
  };
  StatusSnapshot TakeStatus() const PMKM_EXCLUDES(mu_);

  /// /runz payload: {"active":..., "run_id":..., "operators":[...],
  /// "result": <last EndRun JSON>, "checkpoint": <last published state>}.
  JsonValue ToJson() const PMKM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  bool active_ PMKM_GUARDED_BY(mu_) = false;
  std::string run_id_ PMKM_GUARDED_BY(mu_);
  std::string plan_summary_ PMKM_GUARDED_BY(mu_);
  uint64_t run_started_micros_ PMKM_GUARDED_BY(mu_) = 0;
  uint64_t runs_started_ PMKM_GUARDED_BY(mu_) = 0;
  uint64_t runs_completed_ PMKM_GUARDED_BY(mu_) = 0;
  std::string last_status_ PMKM_GUARDED_BY(mu_);
  bool last_ok_ PMKM_GUARDED_BY(mu_) = false;
  std::vector<OperatorStats> operators_ PMKM_GUARDED_BY(mu_);
  JsonValue result_ PMKM_GUARDED_BY(mu_);
  JsonValue checkpoint_ PMKM_GUARDED_BY(mu_);
  bool have_result_ PMKM_GUARDED_BY(mu_) = false;
  bool have_checkpoint_ PMKM_GUARDED_BY(mu_) = false;
};

}  // namespace obs
}  // namespace pmkm

#endif  // PMKM_OBS_RUNBOARD_H_
