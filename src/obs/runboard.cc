#include "obs/runboard.h"

#include <chrono>
#include <utility>

namespace pmkm {
namespace obs {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void RunBoard::BeginRun(const std::string& run_id,
                        const std::string& plan_summary,
                        const std::vector<std::string>& operator_names) {
  MutexLock lock(mu_);
  PMKM_SCHED_POINT("runboard.begin");
  active_ = true;
  run_id_ = run_id;
  plan_summary_ = plan_summary;
  run_started_micros_ = NowMicros();
  ++runs_started_;
  operators_.clear();
  operators_.reserve(operator_names.size());
  for (const std::string& name : operator_names) {
    OperatorStats stats;
    stats.name = name;
    operators_.push_back(std::move(stats));
  }
  have_result_ = false;
  have_checkpoint_ = false;
}

void RunBoard::PublishOperator(size_t slot, const OperatorStats& stats) {
  MutexLock lock(mu_);
  PMKM_SCHED_POINT("runboard.publish");
  if (slot >= operators_.size()) return;  // layout changed under us
  operators_[slot] = stats;
}

void RunBoard::PublishCheckpoint(JsonValue state) {
  MutexLock lock(mu_);
  checkpoint_ = std::move(state);
  have_checkpoint_ = true;
}

void RunBoard::EndRun(bool ok, const std::string& status_message,
                      JsonValue result) {
  MutexLock lock(mu_);
  PMKM_SCHED_POINT("runboard.end");
  active_ = false;
  last_ok_ = ok;
  last_status_ = status_message;
  result_ = std::move(result);
  have_result_ = true;
  ++runs_completed_;
}

RunBoard::StatusSnapshot RunBoard::TakeStatus() const {
  MutexLock lock(mu_);
  PMKM_SCHED_POINT("runboard.read");
  StatusSnapshot out;
  out.active = active_;
  out.run_id = run_id_;
  out.plan_summary = plan_summary_;
  if (active_ && run_started_micros_ != 0) {
    out.run_elapsed_seconds =
        static_cast<double>(NowMicros() - run_started_micros_) / 1e6;
  }
  out.runs_started = runs_started_;
  out.runs_completed = runs_completed_;
  out.last_status = last_status_;
  out.operators = operators_;
  return out;
}

JsonValue RunBoard::ToJson() const {
  MutexLock lock(mu_);
  PMKM_SCHED_POINT("runboard.read");
  JsonValue root = JsonValue::Object();
  root.Set("active", active_);
  root.Set("run_id", run_id_);
  root.Set("plan", plan_summary_);
  root.Set("runs_started", runs_started_);
  root.Set("runs_completed", runs_completed_);
  if (runs_completed_ > 0) {
    root.Set("last_run_ok", last_ok_);
    root.Set("last_run_status", last_status_);
  }
  JsonValue operators = JsonValue::Array();
  for (const OperatorStats& stats : operators_) {
    operators.Append(stats.ToJson());
  }
  root.Set("operators", std::move(operators));
  if (have_result_) root.Set("result", result_);
  if (have_checkpoint_) root.Set("checkpoint", checkpoint_);
  return root;
}

}  // namespace obs
}  // namespace pmkm
