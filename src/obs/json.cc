#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pmkm {

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::Append(JsonValue value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; clamp to null, which consumers treat as absent.
    *out += "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  *out += '\n';
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += ',';
        AppendIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      *out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) *out += ',';
        AppendIndent(out, indent, depth + 1);
        *out += '"';
        *out += JsonEscape(members_[i].first);
        *out += indent < 0 ? "\":" : "\": ";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over the serialized text.
///
/// Nesting depth is capped at kMaxParseDepth: the parser recurses once per
/// container level, so without a cap a short adversarial input ("[[[[...")
/// overflows the stack. 256 levels is far beyond anything the exporters
/// emit while keeping worst-case stack usage trivially small.
class JsonParser {
 public:
  static constexpr int kMaxParseDepth = 256;

  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    PMKM_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        if (depth_ >= kMaxParseDepth) return Error("nesting too deep");
        ++depth_;
        Result<JsonValue> obj = ParseObject();
        --depth_;
        return obj;
      }
      case '[': {
        if (depth_ >= kMaxParseDepth) return Error("nesting too deep");
        ++depth_;
        Result<JsonValue> arr = ParseArray();
        --depth_;
        return arr;
      }
      case '"': {
        PMKM_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        return ParseKeyword("true", JsonValue(true));
      case 'f':
        return ParseKeyword("false", JsonValue(false));
      case 'n':
        return ParseKeyword("null", JsonValue());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseKeyword(const std::string& word, JsonValue value) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    return JsonValue(v);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not needed by
          // our own exporters; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWhitespace();
      PMKM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      PMKM_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    for (;;) {
      PMKM_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace pmkm
