#include "obs/stats.h"

#include <cstdio>

#include "obs/metrics.h"

namespace pmkm {

void OperatorStats::MergeFrom(const OperatorStats& other) {
  if (kernel.empty()) kernel = other.kernel;
  rows_in += other.rows_in;
  rows_out += other.rows_out;
  bytes_in += other.bytes_in;
  bytes_out += other.bytes_out;
  wall_seconds += other.wall_seconds;
  cpu_seconds += other.cpu_seconds;
  queue_wait_seconds += other.queue_wait_seconds;
  kmeans_iterations += other.kmeans_iterations;
  kmeans_restarts += other.kmeans_restarts;
  retries += other.retries;
  restarts += other.restarts;
  items_dropped += other.items_dropped;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB",
                  static_cast<double>(bytes) / 1024.0);
  } else if (bytes < (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(bytes) / (1ULL << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGiB",
                  static_cast<double>(bytes) / (1ULL << 30));
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

std::string OperatorStats::ToString() const {
  std::string out;
  out += "rows=" + std::to_string(rows_in) + "/" +
         std::to_string(rows_out);
  out += " bytes=" + FormatBytes(bytes_in) + "/" + FormatBytes(bytes_out);
  if (!kernel.empty()) out += " kernel=" + kernel;
  out += " wall=" + FormatSeconds(wall_seconds);
  out += " cpu=" + FormatSeconds(cpu_seconds);
  out += " queue_wait=" + FormatSeconds(queue_wait_seconds);
  if (kmeans_iterations > 0) {
    out += " iters=" + std::to_string(kmeans_iterations);
    out += " kmeans_restarts=" + std::to_string(kmeans_restarts);
  }
  out += " retries=" + std::to_string(retries);
  out += " restarts=" + std::to_string(restarts);
  if (items_dropped > 0) {
    out += " dropped=" + std::to_string(items_dropped);
  }
  return out;
}

JsonValue OperatorStats::ToJson() const {
  JsonValue j = JsonValue::Object();
  j.Set("name", name);
  if (!kernel.empty()) j.Set("kernel", kernel);
  j.Set("rows_in", rows_in);
  j.Set("rows_out", rows_out);
  j.Set("bytes_in", bytes_in);
  j.Set("bytes_out", bytes_out);
  j.Set("wall_seconds", wall_seconds);
  j.Set("cpu_seconds", cpu_seconds);
  j.Set("queue_wait_seconds", queue_wait_seconds);
  j.Set("kmeans_iterations", kmeans_iterations);
  j.Set("kmeans_restarts", kmeans_restarts);
  j.Set("retries", retries);
  j.Set("restarts", restarts);
  j.Set("items_dropped", items_dropped);
  return j;
}

void OperatorStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const std::string prefix = "op." + name + ".";
  registry->counter(prefix + "rows_in").Increment(rows_in);
  registry->counter(prefix + "rows_out").Increment(rows_out);
  registry->counter(prefix + "bytes_in").Increment(bytes_in);
  registry->counter(prefix + "bytes_out").Increment(bytes_out);
  registry->counter(prefix + "wall_us")
      .Increment(static_cast<uint64_t>(wall_seconds * 1e6));
  registry->counter(prefix + "cpu_us")
      .Increment(static_cast<uint64_t>(cpu_seconds * 1e6));
  registry->counter(prefix + "queue_wait_us")
      .Increment(static_cast<uint64_t>(queue_wait_seconds * 1e6));
  registry->counter(prefix + "kmeans_iterations")
      .Increment(kmeans_iterations);
  registry->counter(prefix + "kmeans_restarts").Increment(kmeans_restarts);
  registry->counter(prefix + "retries").Increment(retries);
  registry->counter(prefix + "restarts").Increment(restarts);
  registry->counter(prefix + "items_dropped").Increment(items_dropped);
}

}  // namespace pmkm
