// SnapshotFlusher: periodically persists observability artifacts (metrics
// JSON, Prometheus text, trace JSON) so a run killed mid-flight — OOM
// kill, SIGKILL, power loss — still leaves a recent snapshot on disk
// instead of nothing (DESIGN.md §14). Before this existed, artifacts were
// written only from the success path at end of run; a crashed run exported
// nothing.
//
// Each flush writes via temp-file + rename, so readers never observe a
// half-written artifact and the previous snapshot survives a crash during
// the write itself.
//
// Usage (pmkm_cluster --flush_interval_ms):
//   SnapshotFlusher flusher(&registry, &tracer);
//   SnapshotFlusher::Options opt;
//   opt.metrics_json_path = "run.metrics.json";
//   flusher.Start(opt);
//   ... run pipeline ...
//   flusher.Stop();  // final flush + join

#ifndef PMKM_OBS_FLUSHER_H_
#define PMKM_OBS_FLUSHER_H_

#include <string>
#include <thread>

#include "common/annotations.h"
#include "common/status.h"

namespace pmkm {

class MetricsRegistry;
class TraceRecorder;

namespace obs {

class SnapshotFlusher {
 public:
  struct Options {
    /// Flush period. The first flush happens one interval after Start.
    int interval_ms = 1000;
    /// Destination paths; an empty path skips that artifact.
    std::string metrics_json_path;
    std::string metrics_prom_path;
    std::string trace_json_path;
  };

  /// Either sink may be null (its artifacts are skipped). Non-owning; the
  /// flusher must be stopped before the sinks are destroyed.
  SnapshotFlusher(const MetricsRegistry* metrics, const TraceRecorder* trace)
      : metrics_(metrics), trace_(trace) {}
  ~SnapshotFlusher();

  SnapshotFlusher(const SnapshotFlusher&) = delete;
  SnapshotFlusher& operator=(const SnapshotFlusher&) = delete;

  /// Spawns the background flush thread. Fails if already running or no
  /// destination path is set.
  Status Start(const Options& options) PMKM_EXCLUDES(mu_);

  /// Final flush, then stops and joins the thread. Idempotent; also
  /// called by the destructor.
  void Stop() PMKM_EXCLUDES(mu_);

  /// One synchronous flush of every configured artifact. Thread-safe;
  /// callable whether or not the background thread runs (failure paths
  /// call this directly before exiting). Returns the first error, but
  /// attempts every artifact regardless.
  Status FlushNow() const;

  /// Background flushes completed so far (test hook).
  uint64_t flush_count() const PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return flush_count_;
  }

  bool running() const PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return running_;
  }

 private:
  void Loop() PMKM_EXCLUDES(mu_);

  const MetricsRegistry* const metrics_;
  const TraceRecorder* const trace_;
  Options options_;

  mutable Mutex mu_;
  CondVar cv_;
  bool running_ PMKM_GUARDED_BY(mu_) = false;
  bool stop_requested_ PMKM_GUARDED_BY(mu_) = false;
  uint64_t flush_count_ PMKM_GUARDED_BY(mu_) = 0;

  std::thread thread_;
};

}  // namespace obs
}  // namespace pmkm

#endif  // PMKM_OBS_FLUSHER_H_
