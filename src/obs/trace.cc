#include "obs/trace.h"

#include <algorithm>
#include <fstream>

namespace pmkm {

uint32_t TraceRecorder::TidLocked(std::thread::id id) {
  auto [it, inserted] =
      tids_.emplace(id, static_cast<uint32_t>(tids_.size() + 1));
  (void)inserted;
  return it->second;
}

void TraceRecorder::Add(TraceEvent event) {
  MutexLock lock(mu_);
  event.tid = TidLocked(std::this_thread::get_id());
  ++total_;
  if (capacity_ == 0 || events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  // Ring is full: overwrite the oldest slot.
  events_[(total_ - 1) % capacity_] = std::move(event);
  ++dropped_;
}

void TraceRecorder::SetCapacity(size_t max_events) {
  MutexLock lock(mu_);
  if (max_events != 0 && events_.size() > max_events) {
    std::vector<TraceEvent> kept = OrderedLocked(max_events);
    dropped_ += events_.size() - kept.size();
    events_ = std::move(kept);
    total_ = events_.size();
  } else if (capacity_ != 0 && events_.size() == capacity_) {
    // Un-rotate so future appends (to a larger/unbounded store) keep
    // chronological order.
    events_ = OrderedLocked(events_.size());
    total_ = events_.size();
  }
  capacity_ = max_events;
}

std::vector<TraceEvent> TraceRecorder::OrderedLocked(size_t n) const {
  std::vector<TraceEvent> out;
  const size_t have = events_.size();
  n = std::min(n, have);
  out.reserve(n);
  // Once the ring wrapped, the oldest retained event sits at the next
  // write slot; before that events_ is already chronological.
  const size_t start =
      (capacity_ != 0 && have == capacity_ && total_ > capacity_)
          ? total_ % capacity_
          : 0;
  for (size_t i = have - n; i < have; ++i) {
    out.push_back(events_[(start + i) % have]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  MutexLock lock(mu_);
  return OrderedLocked(events_.size());
}

std::vector<TraceEvent> TraceRecorder::Recent(size_t n) const {
  MutexLock lock(mu_);
  return OrderedLocked(n);
}

void TraceRecorder::SetRunId(const std::string& run_id) {
  MutexLock lock(mu_);
  run_id_ = run_id;
}

JsonValue TraceRecorder::ToJson() const {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::Object();
  if (!run_id_.empty()) root.Set("run_id", run_id_);
  JsonValue events = JsonValue::Array();
  for (const TraceEvent& e : OrderedLocked(events_.size())) {
    JsonValue j = JsonValue::Object();
    j.Set("name", e.name);
    j.Set("cat", e.category);
    j.Set("ph", "X");
    j.Set("ts", e.start_us);
    j.Set("dur", e.dur_us);
    j.Set("pid", 1);
    j.Set("tid", e.tid);
    if (!e.args.empty()) {
      JsonValue args = JsonValue::Object();
      for (const auto& [k, v] : e.args) args.Set(k, v);
      j.Set("args", std::move(args));
    }
    events.Append(std::move(j));
  }
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", "ms");
  return root;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  out << ToJson().Dump(1) << "\n";
  if (!out) {
    return Status::IOError("failed writing trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace pmkm
