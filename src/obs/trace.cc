#include "obs/trace.h"

#include <fstream>

namespace pmkm {

uint32_t TraceRecorder::TidLocked(std::thread::id id) {
  auto [it, inserted] =
      tids_.emplace(id, static_cast<uint32_t>(tids_.size() + 1));
  (void)inserted;
  return it->second;
}

void TraceRecorder::Add(TraceEvent event) {
  MutexLock lock(mu_);
  event.tid = TidLocked(std::this_thread::get_id());
  events_.push_back(std::move(event));
}

JsonValue TraceRecorder::ToJson() const {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::Object();
  JsonValue events = JsonValue::Array();
  for (const TraceEvent& e : events_) {
    JsonValue j = JsonValue::Object();
    j.Set("name", e.name);
    j.Set("cat", e.category);
    j.Set("ph", "X");
    j.Set("ts", e.start_us);
    j.Set("dur", e.dur_us);
    j.Set("pid", 1);
    j.Set("tid", e.tid);
    if (!e.args.empty()) {
      JsonValue args = JsonValue::Object();
      for (const auto& [k, v] : e.args) args.Set(k, v);
      j.Set("args", std::move(args));
    }
    events.Append(std::move(j));
  }
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", "ms");
  return root;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  out << ToJson().Dump(1) << "\n";
  if (!out) {
    return Status::IOError("failed writing trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace pmkm
