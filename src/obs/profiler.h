// Sampling CPU profiler: SIGPROF/ITIMER_PROF backtraces into a lock-free
// ring, exported as folded-stack text (one "frame;frame;frame count" line
// per unique stack, root first — the input format flamegraph.pl and
// speedscope consume directly).
//
// How it works: Start() arms ITIMER_PROF at `hz`; the kernel delivers
// SIGPROF to a running thread every 1/hz seconds of *process CPU time*,
// and the handler captures a backtrace() into a preallocated ring slot
// (no locks, no allocation — see DESIGN.md §14 for the signal-safety
// notes; backtrace() is warmed up before the handler is installed so its
// lazy dynamic-loader initialization never runs in signal context).
// Symbolization (dladdr + demangling) happens later, outside signal
// context, in FoldedStacks().
//
// Cost: a stopped profiler costs nothing — no timer, no handler, zero
// instructions on any code path (benchmarked in bench_micro). A running
// one costs one backtrace per sampling tick (~1–2 µs at the default
// 99 Hz ≈ 0.02% CPU).
//
// Wiring: `pmkm_cluster --profile_out=prof.folded` profiles the run;
// `/pprofz` on the debug server serves the live folded text;
// `pmkm_inspect profile prof.folded` renders a top-N report.
//
// Consistency: the ring may wrap (oldest samples overwritten, counted in
// dropped()); a reader racing the handler can see a torn slot, which is
// skipped via its depth marker. One process-wide profiler (Global()) —
// ITIMER_PROF is per-process, so there is nothing to instantiate per run.

#ifndef PMKM_OBS_PROFILER_H_
#define PMKM_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"

namespace pmkm {
namespace obs {

class CpuProfiler {
 public:
  struct Options {
    /// Sampling frequency in samples per second of process CPU time.
    int hz = 99;
    /// Ring capacity; once full the oldest samples are overwritten.
    size_t max_samples = 1 << 16;
    /// Frames captured per sample (deeper stacks are truncated at the
    /// leaf end).
    size_t max_depth = 48;
  };

  /// The process-wide profiler (ITIMER_PROF is per-process).
  static CpuProfiler& Global();

  /// Arms the timer and installs the SIGPROF handler. Fails if already
  /// running. Clears previously collected samples.
  Status Start(const Options& options);
  Status Start() { return Start(Options()); }

  /// Disarms the timer and restores the previous SIGPROF disposition.
  /// Collected samples remain readable until the next Start().
  Status Stop();

  bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Samples currently retained (≤ max_samples).
  uint64_t sample_count() const;
  /// Samples overwritten because the ring wrapped.
  uint64_t dropped() const;

  /// Folded-stack text: "main;Run;AssignBlock 42\n..." sorted by count,
  /// root-first frames, semicolon-separated, demangled where possible.
  /// Callable while running (reads a racy but safe snapshot).
  std::string FoldedStacks() const;

  Status WriteFolded(const std::string& path) const;

 private:
  CpuProfiler() = default;

  static void SignalHandler(int signum) PMKM_SIGNAL_SAFE;

  std::atomic<bool> running_{false};
  std::atomic<bool> armed_{false};  // handler writes only when set
  std::atomic<uint64_t> next_{0};   // total samples ever taken
  size_t max_samples_ = 0;
  size_t max_depth_ = 0;
  // Slot i holds depths_[i] frames at pcs_[i * max_depth_ ...]. The depth
  // is 0 while the handler rewrites a slot, so readers skip torn slots.
  std::vector<void*> pcs_;
  std::vector<std::atomic<int>> depths_;
};

/// One aggregated row of a folded-stack profile (pmkm_inspect profile).
struct ProfileFrameTotals {
  std::string frame;
  uint64_t self = 0;   // samples with this frame as the leaf
  uint64_t total = 0;  // samples with this frame anywhere on the stack
};

/// Parses folded-stack text and aggregates per-frame self/total counts,
/// sorted by self descending (ties: total, then name). Returns the grand
/// total sample count via `total_samples` when non-null.
std::vector<ProfileFrameTotals> AggregateFolded(const std::string& folded,
                                                uint64_t* total_samples);

}  // namespace obs
}  // namespace pmkm

#endif  // PMKM_OBS_PROFILER_H_
