// Time-windowed metrics: RollingHistogram and RollingCounter.
//
// Both layer a ring of per-second slots over the cumulative instruments in
// obs/metrics.h, so `/metrics` and `/statusz` can answer "what was the
// p99 over the *last minute*" instead of "since process start" — the
// primitive the SLO work asserts against. Each slot is tagged with the
// epoch second it currently holds; a recorder arriving in a new second
// CAS-claims the slot and zeroes it before recording. Readers merge every
// slot whose epoch falls inside the window.
//
// Consistency: recording is relaxed atomics only (same budget as
// Histogram::Record). A reader racing a slot reset can see a partially
// cleared slot, and a recorder racing the reset can land a sample in a
// slot another thread is zeroing — both smear the window by at most a few
// samples at a second boundary, which is acceptable for monitoring
// quantiles and documented in DESIGN.md §14. The cumulative totals
// (total()) are never reset, so Prometheus _count/_sum stay monotonic
// across scrapes.
//
// Testability: Record()/TakeSnapshot() read a coarse steady-clock second;
// RecordAt()/SnapshotAt() take the tick explicitly so unit tests drive
// window expiry deterministically without sleeping.

#ifndef PMKM_OBS_ROLLING_H_
#define PMKM_OBS_ROLLING_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace pmkm {

/// Histogram over a sliding window of the last `window_seconds` seconds,
/// plus a cumulative Histogram since construction. Thread-safe; Record is
/// lock-free.
class RollingHistogram {
 public:
  explicit RollingHistogram(uint64_t window_seconds = 60);

  uint64_t window_seconds() const { return window_seconds_; }

  void Record(double value) PMKM_WAITFREE { RecordAt(value, NowTick()); }
  void RecordAt(double value, uint64_t tick) PMKM_WAITFREE;

  /// Windowed view. min/max/quantiles cover only samples recorded in the
  /// last `window_seconds` seconds; count/sum likewise.
  struct Snapshot {
    uint64_t window_seconds = 0;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };
  Snapshot TakeSnapshot() const { return SnapshotAt(NowTick()); }
  Snapshot SnapshotAt(uint64_t tick) const;

  /// Cumulative distribution since construction (never reset).
  const Histogram& total() const { return total_; }

  /// Coarse monotonic clock, in whole seconds since process start.
  static uint64_t NowTick();

 private:
  struct Slot {
    // The tick this slot currently holds; kEmpty until first claimed.
    std::atomic<uint64_t> epoch{kEmpty};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::array<std::atomic<uint64_t>, Histogram::kBuckets> buckets{};
  };
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  Slot& SlotFor(uint64_t tick) {
    return slots_[tick % slots_.size()];
  }

  const uint64_t window_seconds_;
  std::vector<Slot> slots_;  // one per second of window; sized at ctor
  Histogram total_;
};

/// Counter with a windowed rate: cumulative total plus events-per-second
/// over the last `window_seconds` seconds. Thread-safe; lock-free.
class RollingCounter {
 public:
  explicit RollingCounter(uint64_t window_seconds = 60);

  uint64_t window_seconds() const { return window_seconds_; }

  void Increment(uint64_t n = 1) PMKM_WAITFREE {
    IncrementAt(n, RollingHistogram::NowTick());
  }
  void IncrementAt(uint64_t n, uint64_t tick) PMKM_WAITFREE;

  /// Cumulative total since construction (monotonic).
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  struct Snapshot {
    uint64_t window_seconds = 0;
    uint64_t total = 0;          // cumulative, monotonic
    uint64_t window_count = 0;   // events inside the window
    double rate_per_second = 0.0;
  };
  Snapshot TakeSnapshot() const {
    return SnapshotAt(RollingHistogram::NowTick());
  }
  Snapshot SnapshotAt(uint64_t tick) const;

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{~uint64_t{0}};
    std::atomic<uint64_t> count{0};
  };

  const uint64_t window_seconds_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> total_{0};
};

}  // namespace pmkm

#endif  // PMKM_OBS_ROLLING_H_
