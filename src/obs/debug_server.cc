#include "obs/debug_server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#if defined(__linux__) || defined(__APPLE__)
#define PMKM_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/rolling.h"
#include "obs/trace.h"

namespace pmkm {
namespace obs {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* StatusLine(int http_status) {
  switch (http_status) {
    case 200:
      return "200 OK";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    case 431:
      return "431 Request Header Fields Too Large";
    default:
      return "500 Internal Server Error";
  }
}

std::string BuildResponse(int http_status, const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += StatusLine(http_status);
  out += "\r\nContent-Type: " + content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

DebugServer::DebugServer(MetricsRegistry* metrics, TraceRecorder* trace)
    : metrics_(metrics), trace_(trace), started_micros_(NowMicros()) {}

DebugServer::~DebugServer() { Stop(); }

bool DebugServer::running() const {
  MutexLock lock(mu_);
  return running_;
}

#if defined(PMKM_HAVE_SOCKETS)

Status DebugServer::Start(const Options& options) {
  {
    MutexLock lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("debug server already running");
    }
  }
  options_ = options;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("debug server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("debug server: bad bind address '" +
                                   options.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("debug server: cannot bind " +
                            options.bind_address + ":" +
                            std::to_string(options.port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal("debug server: listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::Internal("debug server: getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));

  pool_ = std::make_unique<ThreadPool>(
      std::max<size_t>(1, options.num_threads));
  {
    MutexLock lock(mu_);
    PMKM_SCHED_POINT("debug_server.start");
    listen_fd_ = fd;
    running_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void DebugServer::Stop() {
  int fd = -1;
  {
    MutexLock lock(mu_);
    PMKM_SCHED_POINT("debug_server.stop");
    if (!running_) return;
    running_ = false;
    fd = listen_fd_;
    listen_fd_ = -1;
  }
  // Unblock accept(): shutdown() makes a blocked accept return, close()
  // releases the port.
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_ != nullptr) {
    pool_->Shutdown();  // drains in-flight handlers
    pool_.reset();
  }
}

void DebugServer::AcceptLoop() {
  while (true) {
    int listen_fd;
    {
      MutexLock lock(mu_);
      if (!running_) return;
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      MutexLock lock(mu_);
      if (!running_) return;  // Stop() closed the listener under us
      continue;               // transient (EINTR, aborted connection)
    }
    // Bound every socket op on the connection: a slow-loris client times
    // out instead of pinning a handler thread.
    timeval timeout;
    timeout.tv_sec = options_.io_timeout_ms / 1000;
    timeout.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    auto future = pool_->Submit([this, conn] { HandleConnection(conn); });
    if (!future.valid()) {
      ::close(conn);  // pool already shut down
      return;
    }
  }
}

void DebugServer::HandleConnection(int fd) const {
  // Read until the end of the request headers, a timeout, or the cap.
  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    // Bounded by SO_RCVTIMEO (options_.io_timeout_ms, set in AcceptLoop).
    // pmkm-ctxcheck: allow(bounded-handler)
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {  // timeout, reset, or clean close before a full request
      ::close(fd);
      return;
    }
    request.append(buf, static_cast<size_t>(n));
    if (request.size() > options_.max_request_bytes) {
      const std::string response = BuildResponse(
          431, "text/plain; charset=utf-8", "request too large\n");
      // Bounded by SO_SNDTIMEO (options_.io_timeout_ms, AcceptLoop).
      // pmkm-ctxcheck: allow(bounded-handler)
      (void)::send(fd, response.data(), response.size(), MSG_NOSIGNAL);
      ::close(fd);
      return;
    }
  }
  // Request line: METHOD SP target SP version.
  std::string response;
  const size_t line_end = request.find_first_of("\r\n");
  std::istringstream line(request.substr(0, line_end));
  std::string method;
  std::string target;
  line >> method >> target;
  if (method != "GET" && method != "HEAD") {
    response = BuildResponse(405, "text/plain; charset=utf-8",
                             "only GET is supported\n");
  } else {
    response = RenderResponse(target);
    if (method == "HEAD") {
      const size_t header_end = response.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        response.resize(header_end + 4);
      }
    }
  }
  size_t sent = 0;
  while (sent < response.size()) {
    // Bounded by SO_SNDTIMEO (options_.io_timeout_ms, AcceptLoop).
    // pmkm-ctxcheck: allow(bounded-handler)
    const ssize_t n = ::send(fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;  // timeout or client went away
    sent += static_cast<size_t>(n);
  }
  ::close(fd);
}

#else  // !PMKM_HAVE_SOCKETS

Status DebugServer::Start(const Options&) {
  return Status::NotImplemented(
      "the debug server requires POSIX sockets");
}

void DebugServer::Stop() {}
void DebugServer::AcceptLoop() {}
void DebugServer::HandleConnection(int) const {}

#endif  // PMKM_HAVE_SOCKETS

void DebugServer::RegisterEndpoint(const std::string& path,
                                   const std::string& description,
                                   const std::string& content_type,
                                   EndpointHandler handler) {
  MutexLock lock(mu_);
  endpoints_[path] = Endpoint{description, content_type, std::move(handler)};
}

std::string DebugServer::RenderResponse(const std::string& target) const {
  // Strip the query string; no endpoint takes parameters yet.
  std::string path = target.substr(0, target.find('?'));
  if (path.empty()) path = "/";
  std::string content_type = "text/plain; charset=utf-8";
  int http_status = 200;
  const std::string body = RenderBody(path, &content_type, &http_status);
  return BuildResponse(http_status, content_type, body);
}

std::string DebugServer::RenderBody(const std::string& path,
                                    std::string* content_type,
                                    int* http_status) const {
  if (path == "/" || path == "/index" || path == "/index.html") {
    return RenderIndex();
  }
  if (path == "/healthz") {
    return "ok\n";
  }
  if (path == "/metrics") {
    if (metrics_ == nullptr) return "# metrics not collected\n";
    return metrics_->ToPrometheusText();
  }
  if (path == "/statusz") {
    return RenderStatusz();
  }
  if (path == "/runz") {
    *content_type = "application/json";
    return board_.ToJson().Dump(2) + "\n";
  }
  if (path == "/tracez") {
    *content_type = "application/json";
    return RenderTracez();
  }
  if (path == "/pprofz") {
    const CpuProfiler& profiler = CpuProfiler::Global();
    std::string folded = profiler.FoldedStacks();
    if (folded.empty()) {
      return "# no profile samples; start the process with --profile_out "
             "(or CpuProfiler::Start) to sample\n";
    }
    return folded;
  }
  // Host-registered endpoints. Copy the entry out so the handler runs
  // without holding mu_ (it may be slow or take its own locks).
  Endpoint endpoint;
  bool found = false;
  {
    MutexLock lock(mu_);
    auto it = endpoints_.find(path);
    if (it != endpoints_.end()) {
      endpoint = it->second;
      found = true;
    }
  }
  if (found && endpoint.handler != nullptr) {
    *content_type = endpoint.content_type;
    // Mounted endpoint handlers are in-process renderers (metrics/status
    // snapshots under short locks) — no socket or file I/O. The contract
    // is documented on RegisterEndpoint; the analyzer cannot see through
    // the std::function.
    // pmkm-ctxcheck: allow(bounded-handler)
    return endpoint.handler();
  }
  *http_status = 404;
  return "not found: " + path + "\n";
}

std::string DebugServer::RenderIndex() const {
  std::string out =
      "pmkm debug server\n"
      "\n"
      "  /metrics   Prometheus exposition (rolling window quantiles "
      "included)\n"
      "  /statusz   build info, uptime, live per-operator stats\n"
      "  /runz      current/most recent run as JSON\n"
      "  /tracez    recent trace spans as JSON\n"
      "  /pprofz    folded-stack CPU profile (flamegraph input)\n"
      "  /healthz   liveness probe\n";
  MutexLock lock(mu_);
  for (const auto& [path, endpoint] : endpoints_) {
    out += "  " + path;
    if (path.size() < 9) out.append(9 - path.size(), ' ');
    out += "  " + endpoint.description + "\n";
  }
  return out;
}

std::string DebugServer::RenderStatusz() const {
  const RunBoard::StatusSnapshot status = board_.TakeStatus();
  std::ostringstream out;
  out << "pmkm debug server\n";
  out << "build: " << __VERSION__ << "\n";
  out << "uptime_seconds: "
      << FormatDouble(
             static_cast<double>(NowMicros() - started_micros_) / 1e6)
      << "\n";
  out << "\n";
  if (status.runs_started == 0) {
    out << "no run published yet\n";
  } else {
    out << "run: " << (status.run_id.empty() ? "-" : status.run_id)
        << (status.active ? " ACTIVE" : " finished");
    if (status.active) {
      out << " (" << FormatDouble(status.run_elapsed_seconds) << "s)";
    }
    out << "\n";
    if (!status.plan_summary.empty()) {
      out << "plan: " << status.plan_summary << "\n";
    }
    out << "runs: " << status.runs_started << " started, "
        << status.runs_completed << " completed\n";
    if (!status.last_status.empty()) {
      out << "last_run: " << status.last_status << "\n";
    }
    out << "\noperators:\n";
    for (const OperatorStats& stats : status.operators) {
      out << "  " << stats.ToString() << "\n";
    }
  }
  if (metrics_ != nullptr) {
    const JsonValue all = metrics_->ToJson();
    const JsonValue* rolling = all.Find("rolling");
    if (rolling != nullptr && !rolling->members().empty()) {
      out << "\nrolling windows:\n";
      for (const auto& [name, entry] : rolling->members()) {
        const JsonValue* p50 = entry.Find("p50");
        const JsonValue* p99 = entry.Find("p99");
        const JsonValue* count = entry.Find("count");
        const JsonValue* window = entry.Find("window_seconds");
        out << "  " << name << ": ";
        if (count != nullptr) out << "n=" << count->Dump() << " ";
        if (p50 != nullptr) out << "p50=" << p50->Dump() << " ";
        if (p99 != nullptr) out << "p99=" << p99->Dump() << " ";
        if (window != nullptr) {
          out << "(last " << window->Dump() << "s)";
        }
        out << "\n";
      }
    }
  }
  return out.str();
}

std::string DebugServer::RenderTracez() const {
  JsonValue root = JsonValue::Object();
  if (trace_ == nullptr) {
    root.Set("events", JsonValue::Array());
    root.Set("note", "tracing not enabled");
    return root.Dump(2) + "\n";
  }
  JsonValue events = JsonValue::Array();
  for (const TraceEvent& e : trace_->Recent(options_.tracez_events)) {
    JsonValue j = JsonValue::Object();
    j.Set("name", e.name);
    j.Set("cat", e.category);
    j.Set("ts_us", e.start_us);
    j.Set("dur_us", e.dur_us);
    j.Set("tid", e.tid);
    events.Append(std::move(j));
  }
  root.Set("events", std::move(events));
  root.Set("dropped", trace_->dropped());
  return root.Dump(2) + "\n";
}

}  // namespace obs
}  // namespace pmkm
