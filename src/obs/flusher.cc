#include "obs/flusher.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmkm {
namespace obs {

namespace {

// Local temp-file + rename publish. (data/manifest.h has a richer
// AtomicWriteFile, but obs sits below the data layer and snapshots only
// need crash atomicity, not fsync durability — the journal owns that.)
Status WriteAtomically(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::IOError("snapshot flush: cannot open " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      return Status::IOError("snapshot flush: write failed: " + tmp);
    }
  }
  // Text snapshot, overwritten every tick; the rename only guards a reader
  // against a half-written file. pmkm-lint: allow(persist)
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("snapshot flush: rename failed: " + path);
  }
  return Status::OK();
}

}  // namespace

SnapshotFlusher::~SnapshotFlusher() { Stop(); }

Status SnapshotFlusher::Start(const Options& options) {
  if (options.interval_ms <= 0) {
    return Status::InvalidArgument("flush interval must be positive");
  }
  if (options.metrics_json_path.empty() &&
      options.metrics_prom_path.empty() &&
      options.trace_json_path.empty()) {
    return Status::InvalidArgument("snapshot flusher has no destinations");
  }
  {
    MutexLock lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("snapshot flusher already running");
    }
    running_ = true;
    stop_requested_ = false;
  }
  options_ = options;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void SnapshotFlusher::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
  // Final flush after the join so Stop() leaves the artifacts current.
  (void)FlushNow();  // best effort on shutdown; errors already logged
  MutexLock lock(mu_);
  running_ = false;
}

void SnapshotFlusher::Loop() {
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  while (true) {
    {
      MutexLock lock(mu_);
      PMKM_SCHED_POINT("flusher.tick");
      if (!stop_requested_) {
        (void)cv_.WaitFor(mu_, interval);
      }
      if (stop_requested_) return;  // Stop() does the final flush
    }
    (void)FlushNow();  // keep flushing on transient I/O errors
    MutexLock lock(mu_);
    ++flush_count_;
  }
}

Status SnapshotFlusher::FlushNow() const {
  Status first = Status::OK();
  auto keep_first = [&first](Status s) {
    if (first.ok() && !s.ok()) first = std::move(s);
  };
  if (metrics_ != nullptr) {
    if (!options_.metrics_json_path.empty()) {
      keep_first(WriteAtomically(options_.metrics_json_path,
                                 metrics_->ToJson().Dump(2) + "\n"));
    }
    if (!options_.metrics_prom_path.empty()) {
      keep_first(WriteAtomically(options_.metrics_prom_path,
                                 metrics_->ToPrometheusText()));
    }
  }
  if (trace_ != nullptr && !options_.trace_json_path.empty()) {
    keep_first(WriteAtomically(options_.trace_json_path,
                               trace_->ToJson().Dump(2) + "\n"));
  }
  return first;
}

}  // namespace obs
}  // namespace pmkm
