// DebugServer: an embedded, dependency-free HTTP/1.1 introspection server
// for live observability (DESIGN.md §14). While a pipeline runs you can:
//
//   curl localhost:PORT/metrics   Prometheus exposition (incl. rolling
//                                 last-minute quantiles)
//   curl localhost:PORT/statusz   build info, uptime, active run and the
//                                 live per-operator stats table
//   curl localhost:PORT/runz      JSON of the current/most recent run
//                                 (StreamRunResult + checkpoint state)
//   curl localhost:PORT/tracez    recent span samples from the trace ring
//   curl localhost:PORT/pprofz    folded-stack CPU profile (flamegraph
//                                 input) when the profiler is running
//   curl localhost:PORT/healthz   liveness probe
//
// Threat/robustness model: this binds to loopback by default and is a
// diagnostics port, not a public API. Still, it must not let a stuck
// client wedge the process: the accept loop hands connections to a
// bounded ThreadPool, every socket read/write carries a timeout
// (slow-loris bound), request size is capped, and responses close the
// connection. Stop() (or destruction) shuts the listener down and joins
// everything.
//
// Request handling is split from socket I/O: RenderResponse(target)
// produces the full HTTP response for a GET target, so tests (and the
// schedcheck sweep) can drive every endpoint against live pipeline state
// without opening sockets.

#ifndef PMKM_OBS_DEBUG_SERVER_H_
#define PMKM_OBS_DEBUG_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/annotations.h"
#include "common/status.h"
#include "obs/runboard.h"

namespace pmkm {

class MetricsRegistry;
class TraceRecorder;
class ThreadPool;

namespace obs {

class CpuProfiler;

class DebugServer {
 public:
  struct Options {
    /// TCP port; 0 asks the kernel for an ephemeral one (read it back
    /// with port() after Start).
    int port = 0;
    /// Loopback by default: a diagnostics port, not a public service.
    std::string bind_address = "127.0.0.1";
    /// Connection-handler pool size (bounds concurrent scrapes).
    size_t num_threads = 2;
    /// Socket read/write timeout — a slow-loris client is cut off after
    /// this long, freeing its handler thread.
    int io_timeout_ms = 2000;
    /// Request size cap; longer requests get 431 and a closed socket.
    size_t max_request_bytes = 8192;
    /// Spans served by /tracez (most recent first in the ring).
    size_t tracez_events = 256;
  };

  /// Either sink may be null; the matching endpoints then report
  /// "not collected". The server does not own the sinks and must be
  /// stopped before they are destroyed.
  DebugServer(MetricsRegistry* metrics, TraceRecorder* trace);
  ~DebugServer();

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Binds, listens and spawns the accept thread + handler pool.
  Status Start(const Options& options);
  Status Start() { return Start(Options()); }

  /// Stops accepting, drains in-flight handlers and joins all threads.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }
  bool running() const PMKM_EXCLUDES(mu_);

  /// The live run state the engine publishes into
  /// (PipelineBuilder::WithDebugServer wires this up).
  RunBoard* board() { return &board_; }

  /// Renders the body of one registered endpoint; invoked per request on
  /// a handler thread, so it must be thread-safe.
  using EndpointHandler = std::function<std::string()>;

  /// Mounts an extra endpoint at `path` (e.g. "/jobz" — must start with
  /// '/'). The handler's return value is served verbatim with the given
  /// content type, and the endpoint is listed on the index page with
  /// `description`. Hosts use this to expose process-specific state (the
  /// serve daemon mounts its live job table here). Registering an
  /// already-mounted path replaces the handler; built-in endpoints cannot
  /// be shadowed. Handlers must be bounded: render from in-memory state
  /// under short locks — no socket/file I/O, no unbounded waits (the
  /// pmkm_ctxcheck bounded-handler rule relies on this contract).
  void RegisterEndpoint(const std::string& path,
                        const std::string& description,
                        const std::string& content_type,
                        EndpointHandler handler) PMKM_EXCLUDES(mu_);

  /// Renders the complete HTTP response for `GET <target>` (path plus
  /// optional query string). Thread-safe; used by the socket layer and
  /// directly by tests.
  std::string RenderResponse(const std::string& target) const;

 private:
  void AcceptLoop();
  // Runs on the bounded handler pool; all socket I/O inside is bounded by
  // options_.io_timeout_ms (SO_RCVTIMEO/SO_SNDTIMEO, set in AcceptLoop).
  void HandleConnection(int fd) const PMKM_BOUNDED_HANDLER;

  // Endpoint bodies (path → content); also sets `content_type`.
  std::string RenderBody(const std::string& path,
                         std::string* content_type, int* http_status) const;
  std::string RenderIndex() const;
  std::string RenderStatusz() const;
  std::string RenderTracez() const;

  MetricsRegistry* const metrics_;
  TraceRecorder* const trace_;
  RunBoard board_;
  Options options_;
  int port_ = -1;

  struct Endpoint {
    std::string description;
    std::string content_type;
    EndpointHandler handler;
  };

  mutable Mutex mu_;
  bool running_ PMKM_GUARDED_BY(mu_) = false;
  int listen_fd_ PMKM_GUARDED_BY(mu_) = -1;
  std::map<std::string, Endpoint> endpoints_ PMKM_GUARDED_BY(mu_);

  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  uint64_t started_micros_ = 0;
};

}  // namespace obs
}  // namespace pmkm

#endif  // PMKM_OBS_DEBUG_SERVER_H_
