#include "obs/rolling.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace pmkm {

namespace {

// CAS-fold a double atomic toward the smaller/larger value.
void FoldMin(std::atomic<double>* slot, double v) {
  double seen = slot->load(std::memory_order_relaxed);
  while (v < seen && !slot->compare_exchange_weak(
                         seen, v, std::memory_order_relaxed)) {
  }
}

void FoldMax(std::atomic<double>* slot, double v) {
  double seen = slot->load(std::memory_order_relaxed);
  while (v > seen && !slot->compare_exchange_weak(
                         seen, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

uint64_t RollingHistogram::NowTick() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

RollingHistogram::RollingHistogram(uint64_t window_seconds)
    : window_seconds_(std::max<uint64_t>(1, window_seconds)),
      slots_(std::max<uint64_t>(1, window_seconds)) {}

void RollingHistogram::RecordAt(double value, uint64_t tick) {
  if (std::isnan(value)) return;
  total_.Record(value);
  Slot& slot = SlotFor(tick);
  uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
  if (epoch != tick) {
    if (slot.epoch.compare_exchange_strong(epoch, tick,
                                           std::memory_order_acq_rel)) {
      // We claimed the slot for this second: clear the stale contents.
      // A racing recorder that already resolved the same tick may record
      // concurrently with this reset; the loss is bounded by one slot
      // boundary (see header).
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum.store(0.0, std::memory_order_relaxed);
      slot.min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
      slot.max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
      for (auto& b : slot.buckets) {
        b.store(0, std::memory_order_relaxed);
      }
    } else if (epoch != tick) {
      // A recorder from a *newer* second claimed the slot first; this
      // sample's second has already rotated out of the ring. Drop it from
      // the window (it is still in total_).
      return;
    }
  }
  slot.buckets[Histogram::BucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  FoldMin(&slot.min, value);
  FoldMax(&slot.max, value);
}

RollingHistogram::Snapshot RollingHistogram::SnapshotAt(
    uint64_t tick) const {
  Snapshot out;
  out.window_seconds = window_seconds_;
  std::array<uint64_t, Histogram::kBuckets> merged{};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const uint64_t oldest =
      tick >= window_seconds_ - 1 ? tick - (window_seconds_ - 1) : 0;
  for (const Slot& slot : slots_) {
    const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == kEmpty || epoch < oldest || epoch > tick) continue;
    const uint64_t n = slot.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.count += n;
    out.sum += slot.sum.load(std::memory_order_relaxed);
    lo = std::min(lo, slot.min.load(std::memory_order_relaxed));
    hi = std::max(hi, slot.max.load(std::memory_order_relaxed));
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      merged[b] += slot.buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (out.count == 0) return out;
  if (!std::isfinite(lo)) lo = 0.0;
  if (!std::isfinite(hi)) hi = 0.0;
  out.min = lo;
  out.max = hi;
  out.p50 =
      Histogram::PercentileFromBuckets(merged, out.count, 50.0, lo, hi);
  out.p95 =
      Histogram::PercentileFromBuckets(merged, out.count, 95.0, lo, hi);
  out.p99 =
      Histogram::PercentileFromBuckets(merged, out.count, 99.0, lo, hi);
  out.p999 =
      Histogram::PercentileFromBuckets(merged, out.count, 99.9, lo, hi);
  return out;
}

RollingCounter::RollingCounter(uint64_t window_seconds)
    : window_seconds_(std::max<uint64_t>(1, window_seconds)),
      slots_(std::max<uint64_t>(1, window_seconds)) {}

void RollingCounter::IncrementAt(uint64_t n, uint64_t tick) {
  total_.fetch_add(n, std::memory_order_relaxed);
  Slot& slot = slots_[tick % slots_.size()];
  uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
  if (epoch != tick) {
    if (slot.epoch.compare_exchange_strong(epoch, tick,
                                           std::memory_order_acq_rel)) {
      slot.count.store(0, std::memory_order_relaxed);
    } else if (epoch != tick) {
      return;  // rotated out; still counted in total_
    }
  }
  slot.count.fetch_add(n, std::memory_order_relaxed);
}

RollingCounter::Snapshot RollingCounter::SnapshotAt(uint64_t tick) const {
  Snapshot out;
  out.window_seconds = window_seconds_;
  out.total = total();
  const uint64_t oldest =
      tick >= window_seconds_ - 1 ? tick - (window_seconds_ - 1) : 0;
  for (const Slot& slot : slots_) {
    const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == ~uint64_t{0} || epoch < oldest || epoch > tick) continue;
    out.window_count += slot.count.load(std::memory_order_relaxed);
  }
  out.rate_per_second = static_cast<double>(out.window_count) /
                        static_cast<double>(window_seconds_);
  return out;
}

}  // namespace pmkm
