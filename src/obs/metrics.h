// MetricsRegistry: the process/run-level metric store behind
// `pmkm_cluster --metrics_out` and the EXPLAIN ANALYZE substrate.
//
// Three instrument kinds, all lock-free on the hot path (a registered
// instrument is a stable pointer; recording is relaxed atomics only):
//   Counter   — monotonically increasing uint64 (rows scanned, retries).
//   Gauge     — last-set int64 plus its high-water mark (queue depth).
//   Histogram — log₂-bucketed distribution with approximate
//               p50/p95/p99/p99.9 and exact min/max (queue block times,
//               span durations). Bucket b covers [2^(b-1), 2^b); values
//               are unit-agnostic doubles, by convention microseconds for
//               "_us"-suffixed metrics.
//
// Time-windowed variants (RollingHistogram / RollingCounter, obs/rolling.h)
// layer a ring of per-second slots over the same log₂ buckets so /metrics
// and /statusz can report last-minute percentiles; the registry owns them
// alongside the cumulative instruments.
//
// Exports: JSON (machine-readable run stats, parsed back by
// `pmkm_inspect metrics`) and Prometheus text exposition format
// (`# HELP`/`# TYPE` lines, escaped label values).
//
// Overhead budget (DESIGN.md §9): instruments are only consulted through
// pointers that are null when observability is off, so a disabled pipeline
// pays one pointer test per potential record.

#ifndef PMKM_OBS_METRICS_H_
#define PMKM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/annotations.h"
#include "obs/json.h"

namespace pmkm {

/// Monotonic event counter. Thread-safe.
class Counter {
 public:
  void Increment(uint64_t n = 1) PMKM_WAITFREE {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value plus high-water mark. Thread-safe.
class Gauge {
 public:
  void Set(int64_t v) PMKM_WAITFREE {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  void Add(int64_t delta) PMKM_WAITFREE {
    UpdateMax(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void UpdateMax(int64_t v) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Log₂-bucketed distribution. Thread-safe; Record is wait-free.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(double value) PMKM_WAITFREE;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;

  /// Approximate percentile (p in [0, 100]) by linear interpolation
  /// inside the covering bucket; exact at the recorded min/max ends.
  double Percentile(double p) const;

  /// Consistent-enough copy for export (individual loads are relaxed).
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;   // exact (CAS-tracked, not bucket-derived)
    double max = 0.0;   // exact
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;  // p99.9, the SLO tail quantile
  };
  Snapshot TakeSnapshot() const;

  // Bucket geometry, shared with RollingHistogram (obs/rolling.h) so the
  // windowed variant merges slots in the exact same bucket space.
  static size_t BucketIndex(double v);
  static double BucketLowerBound(size_t b);
  static double BucketUpperBound(size_t b);

  /// Percentile over an externally merged bucket array (same geometry),
  /// clamped to the observed [min, max] so p0/p100 are exact. `count`
  /// must equal the sum of `buckets`.
  static double PercentileFromBuckets(
      const std::array<uint64_t, kBuckets>& buckets, uint64_t count,
      double p, double observed_min, double observed_max);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // min/max as atomics updated by CAS; initialized lazily on first Record.
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

class RollingHistogram;
class RollingCounter;

/// Escapes a Prometheus label value: backslash, double-quote and newline
/// get backslash-escaped per the text exposition format.
std::string PromEscapeLabelValue(const std::string& value);

/// Thread-safe name → instrument registry. Instruments live as long as the
/// registry and their addresses are stable, so hot paths resolve a name
/// once and record through the pointer ever after.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  Counter& counter(const std::string& name) PMKM_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) PMKM_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) PMKM_EXCLUDES(mu_);

  /// Windowed instruments (obs/rolling.h). `window_seconds` applies only
  /// on first registration of the name.
  RollingHistogram& rolling_histogram(const std::string& name,
                                      uint64_t window_seconds = 60)
      PMKM_EXCLUDES(mu_);
  RollingCounter& rolling_counter(const std::string& name,
                                  uint64_t window_seconds = 60)
      PMKM_EXCLUDES(mu_);

  /// Optional `# HELP` text attached to an instrument name; instruments
  /// without one export a generated description.
  void SetHelp(const std::string& name, const std::string& help)
      PMKM_EXCLUDES(mu_);

  /// Tags every export with the run id: JSON gains a "run_id" field and
  /// the Prometheus text gains `pmkm_run_info{run_id="..."} 1`.
  void SetRunId(const std::string& run_id) PMKM_EXCLUDES(mu_);
  std::string run_id() const PMKM_EXCLUDES(mu_);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "rolling": {...}} plus "run_id" when set.
  JsonValue ToJson() const PMKM_EXCLUDES(mu_);
  std::string ToJsonString(int indent = 2) const {
    return ToJson().Dump(indent);
  }

  /// Prometheus text exposition format; metric names are prefixed and
  /// sanitized ([a-zA-Z0-9_] only). Histograms export as summaries;
  /// rolling histograms export windowed quantiles (window="60s" label)
  /// with cumulative _count/_sum so scrapes stay monotonic.
  std::string ToPrometheusText(const std::string& prefix = "pmkm") const
      PMKM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // The maps are guarded; the instruments they point at are internally
  // thread-safe (atomics), so recording through a previously resolved
  // pointer takes no lock.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PMKM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PMKM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PMKM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<RollingHistogram>>
      rolling_histograms_ PMKM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<RollingCounter>> rolling_counters_
      PMKM_GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ PMKM_GUARDED_BY(mu_);
  std::string run_id_ PMKM_GUARDED_BY(mu_);
};

}  // namespace pmkm

#endif  // PMKM_OBS_METRICS_H_
