// TraceRecorder + ScopedSpan: operator-level tracing in the Chrome
// `trace_event` JSON format, so a pipeline run opens directly in
// chrome://tracing or Perfetto (load the file produced by
// `pmkm_cluster --trace_out=run.trace.json`).
//
// Usage:
//   TraceRecorder tracer;
//   {
//     ScopedSpan span(&tracer, "partial.chunk", "compute");
//     span.AddArg("cell", cell.ToString());
//     ... work ...
//   }  // span records a complete ("ph":"X") event on destruction
//
// A null recorder disables a span entirely — construction does not even
// read the clock — which is how the pipeline stays zero-cost with tracing
// off. Events append under a mutex; spans are per-bucket/chunk/cell
// (hundreds to thousands per run), far off any hot path.
//
// Long-running processes cap the recorder with SetCapacity(n): the event
// store becomes a ring that keeps the most recent n spans (dropped() counts
// the overwritten ones). The debug server's /tracez serves Recent(n) from
// that ring.

#ifndef PMKM_OBS_TRACE_H_
#define PMKM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "obs/json.h"

namespace pmkm {

/// One recorded complete event (Chrome trace "ph":"X").
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t start_us = 0;  // relative to the recorder's origin
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  std::vector<std::pair<std::string, JsonValue>> args;
};

/// Thread-safe in-memory sink for trace events.
class TraceRecorder {
 public:
  TraceRecorder() : origin_(std::chrono::steady_clock::now()) {}

  /// Microseconds since the recorder was created.
  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

  void Add(TraceEvent event) PMKM_EXCLUDES(mu_);

  /// Bounds the event store to a ring of the most recent `max_events`
  /// spans (0 = unbounded, the default). Shrinking an over-full store
  /// keeps the newest events.
  void SetCapacity(size_t max_events) PMKM_EXCLUDES(mu_);

  /// Events overwritten because the ring was full.
  uint64_t dropped() const PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return dropped_;
  }

  size_t size() const PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return events_.size();
  }

  /// All retained events, oldest first.
  std::vector<TraceEvent> Events() const PMKM_EXCLUDES(mu_);

  /// The most recent `n` events, oldest first.
  std::vector<TraceEvent> Recent(size_t n) const PMKM_EXCLUDES(mu_);

  /// Tags ToJson with a top-level "run_id" (empty = untagged).
  void SetRunId(const std::string& run_id) PMKM_EXCLUDES(mu_);

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} plus "run_id" when
  /// set.
  JsonValue ToJson() const PMKM_EXCLUDES(mu_);

  Status WriteJson(const std::string& path) const PMKM_EXCLUDES(mu_);

 private:
  // Small dense id per thread; Chrome renders one row per tid.
  uint32_t TidLocked(std::thread::id id) PMKM_REQUIRES(mu_);

  // Retained events, oldest first (materializes the ring order).
  std::vector<TraceEvent> OrderedLocked(size_t n) const PMKM_REQUIRES(mu_);

  mutable Mutex mu_;
  // Unbounded: plain append. Bounded: a ring where slot (total_ %
  // capacity_) is the next write position once full.
  std::vector<TraceEvent> events_ PMKM_GUARDED_BY(mu_);
  size_t capacity_ PMKM_GUARDED_BY(mu_) = 0;
  uint64_t total_ PMKM_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ PMKM_GUARDED_BY(mu_) = 0;
  std::string run_id_ PMKM_GUARDED_BY(mu_);
  std::map<std::thread::id, uint32_t> tids_ PMKM_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point origin_;
};

/// RAII span: records a complete event covering its own lifetime. Safe to
/// construct with a null recorder (fully disabled, no clock read).
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string name,
             std::string category = "op")
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    event_.name = std::move(name);
    event_.category = std::move(category);
    event_.start_us = recorder_->NowMicros();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (recorder_ == nullptr) return;
    event_.dur_us = recorder_->NowMicros() - event_.start_us;
    recorder_->Add(std::move(event_));
  }

  bool enabled() const { return recorder_ != nullptr; }

  /// Attaches a key/value argument shown in the trace viewer's detail
  /// pane. No-op when disabled.
  void AddArg(const std::string& key, JsonValue value) {
    if (recorder_ == nullptr) return;
    event_.args.emplace_back(key, std::move(value));
  }

 private:
  TraceRecorder* recorder_;
  TraceEvent event_;
};

}  // namespace pmkm

#endif  // PMKM_OBS_TRACE_H_
