#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace pmkm {

// ---------------------------------------------------------------------------
// Histogram

size_t Histogram::BucketIndex(double v) {
  if (!(v > 1.0)) return 0;  // NaN and everything <= 1 land in bucket 0
  const int exp = std::ilogb(v);
  // v in [2^exp, 2^(exp+1)) with exp >= 0 → bucket exp + 1 covers
  // [2^exp, 2^(exp+1)); exact powers of two sit at their lower bound.
  return std::min<size_t>(kBuckets - 1, static_cast<size_t>(exp) + 1);
}

double Histogram::BucketLowerBound(size_t b) {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
}

double Histogram::BucketUpperBound(size_t b) {
  return std::ldexp(1.0, static_cast<int>(b));
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  const uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) {
    // First sample initializes both extremes; racing first samples all
    // settle through the CAS loops below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen && !min_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(n);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    const uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Interpolate inside the bucket, clamped to the observed extremes
      // so p0/p100 are exact.
      const double lo = std::max(BucketLowerBound(b), min());
      const double hi = std::min(BucketUpperBound(b), max());
      const double frac =
          in_bucket == 0
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return max();
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = Percentile(50);
  s.p95 = Percentile(95);
  s.p99 = Percentile(99);
  return s;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

JsonValue MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, c] : counters_) {
    counters.Set(name, c->value());
  }
  root.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, g] : gauges_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("value", g->value());
    entry.Set("max", g->max());
    gauges.Set(name, std::move(entry));
  }
  root.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->TakeSnapshot();
    JsonValue entry = JsonValue::Object();
    entry.Set("count", s.count);
    entry.Set("sum", s.sum);
    entry.Set("min", s.min);
    entry.Set("max", s.max);
    entry.Set("p50", s.p50);
    entry.Set("p95", s.p95);
    entry.Set("p99", s.p99);
    histograms.Set(name, std::move(entry));
  }
  root.Set("histograms", std::move(histograms));
  return root;
}

namespace {

std::string PromName(const std::string& prefix, const std::string& name) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')
               ? c
               : '_';
  }
  return out;
}

std::string PromNumber(double v) {
  JsonValue j(v);  // reuse the JSON number formatter (integers stay exact)
  return j.Dump();
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText(
    const std::string& prefix) const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string p = PromName(prefix, name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = PromName(prefix, name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g->value()) + "\n";
    out += "# TYPE " + p + "_max gauge\n";
    out += p + "_max " + std::to_string(g->max()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = PromName(prefix, name);
    const Histogram::Snapshot s = h->TakeSnapshot();
    out += "# TYPE " + p + " summary\n";
    out += p + "{quantile=\"0.5\"} " + PromNumber(s.p50) + "\n";
    out += p + "{quantile=\"0.95\"} " + PromNumber(s.p95) + "\n";
    out += p + "{quantile=\"0.99\"} " + PromNumber(s.p99) + "\n";
    out += p + "_sum " + PromNumber(s.sum) + "\n";
    out += p + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

}  // namespace pmkm
