#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/rolling.h"

namespace pmkm {

// ---------------------------------------------------------------------------
// Histogram

size_t Histogram::BucketIndex(double v) {
  if (!(v > 1.0)) return 0;  // NaN and everything <= 1 land in bucket 0
  const int exp = std::ilogb(v);
  // v in [2^exp, 2^(exp+1)) with exp >= 0 → bucket exp + 1 covers
  // [2^exp, 2^(exp+1)); exact powers of two sit at their lower bound.
  return std::min<size_t>(kBuckets - 1, static_cast<size_t>(exp) + 1);
}

double Histogram::BucketLowerBound(size_t b) {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
}

double Histogram::BucketUpperBound(size_t b) {
  return std::ldexp(1.0, static_cast<int>(b));
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  const uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) {
    // First sample initializes both extremes; racing first samples all
    // settle through the CAS loops below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen && !min_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::PercentileFromBuckets(
    const std::array<uint64_t, kBuckets>& buckets, uint64_t count,
    double p, double observed_min, double observed_max) {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    const uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Interpolate inside the bucket, clamped to the observed extremes
      // so p0/p100 are exact.
      const double lo = std::max(BucketLowerBound(b), observed_min);
      const double hi = std::min(BucketUpperBound(b), observed_max);
      const double frac = (rank - static_cast<double>(seen)) /
                          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return observed_max;
}

double Histogram::Percentile(double p) const {
  std::array<uint64_t, kBuckets> copy;
  for (size_t b = 0; b < kBuckets; ++b) {
    copy[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  uint64_t n = 0;
  for (const uint64_t c : copy) n += c;
  return PercentileFromBuckets(copy, n, p, min(), max());
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = Percentile(50);
  s.p95 = Percentile(95);
  s.p99 = Percentile(99);
  s.p999 = Percentile(99.9);
  return s;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

RollingHistogram& MetricsRegistry::rolling_histogram(
    const std::string& name, uint64_t window_seconds) {
  MutexLock lock(mu_);
  auto& slot = rolling_histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<RollingHistogram>(window_seconds);
  }
  return *slot;
}

RollingCounter& MetricsRegistry::rolling_counter(const std::string& name,
                                                 uint64_t window_seconds) {
  MutexLock lock(mu_);
  auto& slot = rolling_counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<RollingCounter>(window_seconds);
  }
  return *slot;
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mu_);
  help_[name] = help;
}

void MetricsRegistry::SetRunId(const std::string& run_id) {
  MutexLock lock(mu_);
  run_id_ = run_id;
}

std::string MetricsRegistry::run_id() const {
  MutexLock lock(mu_);
  return run_id_;
}

JsonValue MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::Object();
  if (!run_id_.empty()) root.Set("run_id", run_id_);
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, c] : counters_) {
    counters.Set(name, c->value());
  }
  root.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, g] : gauges_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("value", g->value());
    entry.Set("max", g->max());
    gauges.Set(name, std::move(entry));
  }
  root.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->TakeSnapshot();
    JsonValue entry = JsonValue::Object();
    entry.Set("count", s.count);
    entry.Set("sum", s.sum);
    entry.Set("min", s.min);
    entry.Set("max", s.max);
    entry.Set("p50", s.p50);
    entry.Set("p95", s.p95);
    entry.Set("p99", s.p99);
    entry.Set("p999", s.p999);
    histograms.Set(name, std::move(entry));
  }
  root.Set("histograms", std::move(histograms));
  JsonValue rolling = JsonValue::Object();
  for (const auto& [name, rh] : rolling_histograms_) {
    const RollingHistogram::Snapshot s = rh->TakeSnapshot();
    JsonValue entry = JsonValue::Object();
    entry.Set("window_seconds", s.window_seconds);
    entry.Set("count", s.count);
    entry.Set("sum", s.sum);
    entry.Set("min", s.min);
    entry.Set("max", s.max);
    entry.Set("p50", s.p50);
    entry.Set("p95", s.p95);
    entry.Set("p99", s.p99);
    entry.Set("p999", s.p999);
    entry.Set("total_count", rh->total().count());
    rolling.Set(name, std::move(entry));
  }
  for (const auto& [name, rc] : rolling_counters_) {
    const RollingCounter::Snapshot s = rc->TakeSnapshot();
    JsonValue entry = JsonValue::Object();
    entry.Set("window_seconds", s.window_seconds);
    entry.Set("window_count", s.window_count);
    entry.Set("rate_per_second", s.rate_per_second);
    entry.Set("total", s.total);
    rolling.Set(name, std::move(entry));
  }
  root.Set("rolling", std::move(rolling));
  return root;
}

namespace {

std::string PromName(const std::string& prefix, const std::string& name) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')
               ? c
               : '_';
  }
  return out;
}

std::string PromNumber(double v) {
  JsonValue j(v);  // reuse the JSON number formatter (integers stay exact)
  return j.Dump();
}

// HELP text: registered help wins; otherwise a generated description.
// Prometheus HELP escaping: backslash and newline only (quotes are legal).
std::string PromEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string MetricsRegistry::ToPrometheusText(
    const std::string& prefix) const {
  MutexLock lock(mu_);
  const auto help_for = [this](const std::string& name,
                               const std::string& fallback)
                            PMKM_REQUIRES(mu_) -> std::string {
    const auto it = help_.find(name);
    return PromEscapeHelp(it != help_.end() ? it->second : fallback);
  };
  std::string out;
  if (!run_id_.empty()) {
    const std::string p = PromName(prefix, "run_info");
    out += "# HELP " + p + " Active run identity (run_id label).\n";
    out += "# TYPE " + p + " gauge\n";
    out += p + "{run_id=\"" + PromEscapeLabelValue(run_id_) + "\"} 1\n";
  }
  for (const auto& [name, c] : counters_) {
    const std::string p = PromName(prefix, name);
    out += "# HELP " + p + " " +
           help_for(name, "Cumulative count of " + p + ".") + "\n";
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = PromName(prefix, name);
    out += "# HELP " + p + " " +
           help_for(name, "Last observed value of " + p + ".") + "\n";
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g->value()) + "\n";
    out += "# HELP " + p + "_max High-water mark of " + p + ".\n";
    out += "# TYPE " + p + "_max gauge\n";
    out += p + "_max " + std::to_string(g->max()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = PromName(prefix, name);
    const Histogram::Snapshot s = h->TakeSnapshot();
    out += "# HELP " + p + " " +
           help_for(name, "Distribution of " + p + ".") + "\n";
    out += "# TYPE " + p + " summary\n";
    out += p + "{quantile=\"0.5\"} " + PromNumber(s.p50) + "\n";
    out += p + "{quantile=\"0.95\"} " + PromNumber(s.p95) + "\n";
    out += p + "{quantile=\"0.99\"} " + PromNumber(s.p99) + "\n";
    out += p + "{quantile=\"0.999\"} " + PromNumber(s.p999) + "\n";
    out += p + "_sum " + PromNumber(s.sum) + "\n";
    out += p + "_count " + std::to_string(s.count) + "\n";
  }
  for (const auto& [name, rh] : rolling_histograms_) {
    const std::string p = PromName(prefix, name);
    const RollingHistogram::Snapshot s = rh->TakeSnapshot();
    const std::string window =
        "window=\"" + std::to_string(s.window_seconds) + "s\"";
    const Histogram::Snapshot t = rh->total().TakeSnapshot();
    out += "# HELP " + p + " " +
           help_for(name, "Distribution of " + p +
                              " (quantiles over the trailing window; "
                              "_sum/_count cumulative).") +
           "\n";
    out += "# TYPE " + p + " summary\n";
    out += p + "{" + window + ",quantile=\"0.5\"} " + PromNumber(s.p50) +
           "\n";
    out += p + "{" + window + ",quantile=\"0.95\"} " + PromNumber(s.p95) +
           "\n";
    out += p + "{" + window + ",quantile=\"0.99\"} " + PromNumber(s.p99) +
           "\n";
    out += p + "{" + window + ",quantile=\"0.999\"} " +
           PromNumber(s.p999) + "\n";
    // Cumulative (never-reset) sum/count keep scrapes monotonic.
    out += p + "_sum " + PromNumber(t.sum) + "\n";
    out += p + "_count " + std::to_string(t.count) + "\n";
  }
  for (const auto& [name, rc] : rolling_counters_) {
    const std::string p = PromName(prefix, name);
    const RollingCounter::Snapshot s = rc->TakeSnapshot();
    out += "# HELP " + p + " " +
           help_for(name, "Cumulative count of " + p +
                              " (_rate over the trailing window).") +
           "\n";
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(s.total) + "\n";
    out += "# HELP " + p + "_rate Events per second over the trailing " +
           std::to_string(s.window_seconds) + "s window.\n";
    out += "# TYPE " + p + "_rate gauge\n";
    out += p + "_rate " + PromNumber(s.rate_per_second) + "\n";
  }
  return out;
}

}  // namespace pmkm
