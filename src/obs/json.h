// Minimal JSON document model shared by the observability exporters and
// their consumers: the metrics registry and trace recorder serialize
// through JsonValue, and `pmkm_inspect metrics|trace` parses the files
// back with the same type. Not a general-purpose JSON library — just the
// subset the run-stats pipeline needs (objects preserve insertion order;
// numbers are doubles, printed as integers when integral).

#ifndef PMKM_OBS_JSON_H_
#define PMKM_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.h"

namespace pmkm {

/// One JSON value: null, bool, number, string, array, or object.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}    // NOLINT
  template <typename I,
            typename = std::enable_if_t<std::is_integral_v<I> &&
                                        !std::is_same_v<I, bool>>>
  JsonValue(I n)                                               // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(std::string s)                                     // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}      // NOLINT

  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  /// Object access. Set overwrites an existing key in place.
  JsonValue& Set(const std::string& key, JsonValue value);
  /// Null when the key is absent (or this is not an object).
  const JsonValue* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Array access.
  JsonValue& Append(JsonValue value);
  size_t size() const {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }
  const JsonValue& at(size_t i) const { return items_[i]; }
  const std::vector<JsonValue>& items() const { return items_; }

  /// Serializes. indent < 0 = compact one-line output; otherwise
  /// pretty-printed with `indent` spaces per level.
  std::string Dump(int indent = -1) const;

  /// Parses one JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace pmkm

#endif  // PMKM_OBS_JSON_H_
