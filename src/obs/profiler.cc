#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#endif

namespace pmkm {
namespace obs {

#if defined(__linux__)

namespace {

// The previous SIGPROF disposition, restored by Stop().
struct sigaction g_previous_action;

// The singleton as seen from signal context. The handler must not call
// Global(): the function-local static there runs __cxa_guard_acquire and
// operator new on first use, neither async-signal-safe (pmkm_ctxcheck
// witness: SignalHandler -> Global -> new CpuProfiler). Global() publishes
// the instance here before Start() can install the handler, so the
// handler does one atomic load and bails while unset.
std::atomic<CpuProfiler*> g_profiler{nullptr};

std::string Demangle(const char* name) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status != 0 || demangled == nullptr) {
    std::free(demangled);
    return name;
  }
  std::string out = demangled;
  std::free(demangled);
  return out;
}

std::string SymbolizePc(void* pc) {
  Dl_info info;
  // The PC in a non-leaf frame points at the *return* address; step back
  // one byte so a call at the very end of a function resolves to it.
  void* lookup = static_cast<char*>(pc) - 1;
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    return Demangle(info.dli_sname);
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx",
                reinterpret_cast<size_t>(pc));
  return buf;
}

// Folded stacks must not contain the separator characters.
std::string SanitizeFrame(std::string frame) {
  for (char& c : frame) {
    if (c == ';' || c == '\n' || c == ' ') c = '_';
  }
  return frame;
}

}  // namespace

CpuProfiler& CpuProfiler::Global() {
  // Intentionally leaked: the SIGPROF handler may fire during static
  // destruction, so the singleton must outlive every other static.
  static CpuProfiler* profiler =
      new CpuProfiler();  // pmkm-lint: allow(naked-new)
  g_profiler.store(profiler, std::memory_order_release);
  return *profiler;
}

void CpuProfiler::SignalHandler(int /*signum*/) {
  CpuProfiler* const published = g_profiler.load(std::memory_order_acquire);
  if (published == nullptr) return;
  CpuProfiler& p = *published;
  if (!p.armed_.load(std::memory_order_relaxed)) return;
  void* frames[128];
  const int want = static_cast<int>(
      std::min<size_t>(p.max_depth_, sizeof(frames) / sizeof(frames[0])));
  const int n = backtrace(frames, want);
  if (n <= 0) return;
  const uint64_t idx = p.next_.fetch_add(1, std::memory_order_relaxed);
  const size_t slot = idx % p.max_samples_;
  // Mark the slot torn while rewriting; readers skip depth == 0.
  p.depths_[slot].store(0, std::memory_order_release);
  std::memcpy(&p.pcs_[slot * p.max_depth_], frames,
              static_cast<size_t>(n) * sizeof(void*));
  p.depths_[slot].store(n, std::memory_order_release);
}

Status CpuProfiler::Start(const Options& options) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("profiler already running");
  }
  if (options.hz <= 0 || options.hz > 10000) {
    return Status::InvalidArgument("profiler hz out of range (1..10000)");
  }
  if (options.max_samples == 0 || options.max_depth == 0) {
    return Status::InvalidArgument("profiler ring must be non-empty");
  }
  max_samples_ = options.max_samples;
  max_depth_ = std::min<size_t>(options.max_depth, 128);
  pcs_.assign(max_samples_ * max_depth_, nullptr);
  depths_ = std::vector<std::atomic<int>>(max_samples_);
  next_.store(0, std::memory_order_relaxed);

  // Warm up backtrace() outside signal context: its first call may
  // dlopen libgcc, which is not async-signal-safe.
  void* warmup[4];
  (void)backtrace(warmup, 4);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &CpuProfiler::SignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &action, &g_previous_action) != 0) {
    return Status::Internal("sigaction(SIGPROF) failed");
  }
  armed_.store(true, std::memory_order_release);

  itimerval timer;
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = static_cast<suseconds_t>(1000000 / options.hz);
  if (timer.it_interval.tv_usec == 0) timer.it_interval.tv_usec = 1;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    armed_.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_previous_action, nullptr);
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

Status CpuProfiler::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("profiler is not running");
  }
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(ITIMER_PROF, &off, nullptr);
  armed_.store(false, std::memory_order_release);
  sigaction(SIGPROF, &g_previous_action, nullptr);
  running_.store(false, std::memory_order_release);
  return Status::OK();
}

uint64_t CpuProfiler::sample_count() const {
  const uint64_t total = next_.load(std::memory_order_relaxed);
  return std::min<uint64_t>(total, max_samples_);
}

uint64_t CpuProfiler::dropped() const {
  const uint64_t total = next_.load(std::memory_order_relaxed);
  return total > max_samples_ ? total - max_samples_ : 0;
}

std::string CpuProfiler::FoldedStacks() const {
  const uint64_t have = sample_count();
  if (have == 0) return "";
  // Symbolize each unique PC once.
  std::map<void*, std::string> symbols;
  std::map<std::string, uint64_t> folded;
  for (uint64_t i = 0; i < have; ++i) {
    const int depth = depths_[i].load(std::memory_order_acquire);
    if (depth <= 0) continue;  // torn slot (handler mid-rewrite)
    const void* const* frames = &pcs_[i * max_depth_];
    // backtrace() returns leaf-first and its first frames belong to the
    // signal machinery (handler + kernel trampoline). Cut everything up
    // to and including the trampoline; if it does not symbolize (stripped
    // vdso), fall back to skipping the handler frame pair.
    int start = -1;
    const int probe = std::min(depth, 6);
    for (int f = 0; f < probe; ++f) {
      void* pc = const_cast<void*>(frames[f]);
      auto it = symbols.find(pc);
      if (it == symbols.end()) {
        it = symbols.emplace(pc, SymbolizePc(pc)).first;
      }
      if (it->second.find("restore_rt") != std::string::npos ||
          it->second.find("killpg") != std::string::npos ||
          it->second.find("sigaction") != std::string::npos) {
        start = f + 1;
      }
    }
    if (start < 0) start = std::min(depth, 2);
    if (start >= depth) continue;
    std::string key;
    // Root-first: walk from the outermost frame down to the leaf.
    for (int f = depth - 1; f >= start; --f) {
      void* pc = const_cast<void*>(frames[f]);
      auto it = symbols.find(pc);
      if (it == symbols.end()) {
        it = symbols.emplace(pc, SymbolizePc(pc)).first;
      }
      if (!key.empty()) key += ';';
      key += SanitizeFrame(it->second);
    }
    if (!key.empty()) ++folded[key];
  }
  // Emit sorted by count descending so the hottest stack leads.
  std::vector<std::pair<std::string, uint64_t>> rows(folded.begin(),
                                                     folded.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::string out;
  for (const auto& [stack, count] : rows) {
    out += stack + " " + std::to_string(count) + "\n";
  }
  return out;
}

#else  // !defined(__linux__)

CpuProfiler& CpuProfiler::Global() {
  // Same intentionally-leaked singleton as the POSIX build.
  static CpuProfiler* profiler =
      new CpuProfiler();  // pmkm-lint: allow(naked-new)
  return *profiler;
}

void CpuProfiler::SignalHandler(int /*signum*/) {}

Status CpuProfiler::Start(const Options&) {
  return Status::NotImplemented(
      "the sampling profiler requires linux (SIGPROF/backtrace)");
}

Status CpuProfiler::Stop() {
  return Status::FailedPrecondition("profiler is not running");
}

uint64_t CpuProfiler::sample_count() const { return 0; }
uint64_t CpuProfiler::dropped() const { return 0; }
std::string CpuProfiler::FoldedStacks() const { return ""; }

#endif  // defined(__linux__)

Status CpuProfiler::WriteFolded(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open profile output file: " + path);
  }
  out << FoldedStacks();
  if (!out.good()) {
    return Status::IOError("failed writing profile output file: " + path);
  }
  return Status::OK();
}

std::vector<ProfileFrameTotals> AggregateFolded(const std::string& folded,
                                                uint64_t* total_samples) {
  struct Totals {
    uint64_t self = 0;
    uint64_t total = 0;
  };
  std::map<std::string, Totals> frames;
  uint64_t grand_total = 0;
  std::istringstream in(folded);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) continue;
    uint64_t count = 0;
    try {
      count = std::stoull(line.substr(space + 1));
    } catch (...) {
      continue;
    }
    grand_total += count;
    const std::string stack = line.substr(0, space);
    // Every distinct frame on the stack gets `count` added to its total;
    // the leaf (last frame) also gets it as self time.
    std::vector<std::string> parts;
    size_t pos = 0;
    while (pos <= stack.size()) {
      const size_t semi = stack.find(';', pos);
      const size_t end = semi == std::string::npos ? stack.size() : semi;
      if (end > pos) parts.push_back(stack.substr(pos, end - pos));
      if (semi == std::string::npos) break;
      pos = semi + 1;
    }
    if (parts.empty()) continue;
    std::map<std::string, bool> seen;
    for (const std::string& frame : parts) {
      if (!seen.emplace(frame, true).second) continue;  // recursion
      frames[frame].total += count;
    }
    frames[parts.back()].self += count;
  }
  if (total_samples != nullptr) *total_samples = grand_total;
  std::vector<ProfileFrameTotals> out;
  out.reserve(frames.size());
  for (const auto& [frame, totals] : frames) {
    out.push_back(ProfileFrameTotals{frame, totals.self, totals.total});
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileFrameTotals& a, const ProfileFrameTotals& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.frame < b.frame;
            });
  return out;
}

}  // namespace obs
}  // namespace pmkm
