// Experiment F7 — reproduces Figure 7: minimum MSE vs number of data
// points per grid cell for serial, 5-chunk and 10-chunk partial/merge
// k-means (the paper's quality plot). Also prints SSE(raw), the same
// models evaluated on raw points.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"

namespace pmkm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  grid.versions = 3;  // quality curves need averaging (merge-seed variance)
  FlagParser parser;
  grid.Register(&parser);
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();

  PrintBanner("Figure 7",
              "minimum MSE, serial vs partial/merge k-means", grid);
  std::cout << "        N |   serial MSE |  5-chunk MSE | 10-chunk MSE || "
               "serial raw |  5-chunk raw | 10-chunk raw\n";
  std::cout << "----------+--------------+--------------+--------------++-"
               "-----------+--------------+--------------\n";

  std::vector<int64_t> sizes = grid.sizes;
  std::sort(sizes.begin(), sizes.end());

  for (int64_t n : sizes) {
    std::vector<RunStats> serial, five, ten;
    for (int64_t v = 0; v < grid.versions; ++v) {
      const Dataset cell = MakeCell(n, grid, v);
      const uint64_t seed = 3000 + static_cast<uint64_t>(v);
      serial.push_back(RunSerial(cell, grid, seed));
      five.push_back(RunPartialMerge(cell, grid, 5, 1, seed));
      ten.push_back(RunPartialMerge(cell, grid, 10, 1, seed));
    }
    const RunStats s = Average(serial);
    const RunStats f = Average(five);
    const RunStats t = Average(ten);
    std::cout << FmtInt(n, 9) << " | " << Fmt(s.min_mse, 12) << " | "
              << Fmt(f.min_mse, 12) << " | " << Fmt(t.min_mse, 12)
              << " || " << Fmt(s.sse_raw, 10, 0) << " | "
              << Fmt(f.sse_raw, 12, 0) << " | " << Fmt(t.sse_raw, 12, 0)
              << "\n";
  }
  std::cout << "\nExpected shape (paper Fig. 7): for small N the serial "
               "MSE is comparable or\nbetter; from the break-even point "
               "(paper: N ≈ 12,500) the partial/merge error\nis clearly "
               "lower, and 10-chunk improves on 5-chunk as N grows.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
