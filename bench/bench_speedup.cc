// Experiment S1 — the paper's §5.1 parallel configuration: "speed-up of
// the processing if the partial k-means operators are parallelized, and
// run on different machines".
//
// The paper's 4-PC cluster is reproduced two ways (DESIGN.md §5):
//  1. Simulated machines: every partition's partial k-means is timed
//     individually; for m machines the wall clock is the makespan of an
//     LPT assignment of partitions to machines plus the serial merge.
//     Partial steps are shared-nothing (no communication until the final
//     centroid sets, a few KB), so this models the paper's deployment
//     exactly and is independent of the host's core count.
//  2. Real operator clones in the stream engine (scan → partial clones →
//     merge over smart queues), which demonstrates mechanism correctness;
//     its wall-clock gain is bounded by the host's physical cores,
//     reported alongside.

#include <algorithm>
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "stream/engine.h"

namespace pmkm {
namespace bench {
namespace {

// Longest-processing-time-first makespan of `times` on m machines.
double LptMakespan(std::vector<double> times, size_t m) {
  std::sort(times.rbegin(), times.rend());
  std::vector<double> load(m, 0.0);
  for (double t : times) {
    *std::min_element(load.begin(), load.end()) += t;
  }
  return *std::max_element(load.begin(), load.end());
}

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  int64_t n = 50000;
  int64_t splits = 10;
  std::string json_out;
  FlagParser parser;
  grid.Register(&parser);
  parser.AddInt("n", &n, "cell size for the speed-up study")
      .AddInt("splits", &splits, "partition count p")
      .AddString("json_out", &json_out,
                 "merge machine-readable results into this JSON file");
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();
  if (grid.quick) n = std::min<int64_t>(n, 10000);

  PrintBanner("Speed-up",
              "cloned partial k-means operators across machines", grid);
  const Dataset cell = MakeCell(n, grid, 0);

  // --- Per-partition timing (one serial pass, like one very patient
  // machine) -----------------------------------------------------------
  Rng rng(42);
  const std::vector<Dataset> chunks =
      SplitRandom(cell, static_cast<size_t>(splits), &rng);
  KMeansConfig pconfig;
  pconfig.k = static_cast<size_t>(grid.k);
  pconfig.restarts = static_cast<size_t>(grid.restarts);
  pconfig.seed = 42;
  const PartialKMeans partial(pconfig);

  std::vector<double> partial_ms;
  WeightedDataset pooled(cell.dim());
  for (size_t p = 0; p < chunks.size(); ++p) {
    const Stopwatch watch;
    auto result = partial.Cluster(chunks[p], p);
    PMKM_CHECK(result.ok()) << result.status();
    partial_ms.push_back(watch.ElapsedMillis());
    pooled.AppendAll(result->centroids);
  }
  MergeKMeansConfig mconfig;
  mconfig.k = static_cast<size_t>(grid.k);
  const Stopwatch merge_watch;
  auto merged = MergeKMeans(mconfig).Merge(pooled);
  PMKM_CHECK(merged.ok()) << merged.status();
  const double merge_ms = merge_watch.ElapsedMillis();

  double serial_partial = 0.0;
  for (double t : partial_ms) serial_partial += t;

  std::cout << "Simulated machines (LPT assignment of " << splits
            << " partitions, N=" << n << "):\n";
  std::cout << " machines |  partial makespan(ms) |  merge(ms) |    "
               "total(ms) | speed-up | efficiency\n";
  std::cout << "----------+-----------------------+------------+---------"
               "-----+----------+-----------\n";
  const double base_total = serial_partial + merge_ms;
  for (size_t m : {1u, 2u, 4u, 8u, 16u}) {
    const double makespan = LptMakespan(partial_ms, m);
    const double total = makespan + merge_ms;
    const double speedup = base_total / total;
    std::cout << FmtInt(static_cast<int64_t>(m), 9) << " | "
              << Fmt(makespan, 21) << " | " << Fmt(merge_ms, 10, 2)
              << " | " << Fmt(total, 12) << " | " << Fmt(speedup, 7, 2)
              << "x | " << Fmt(speedup / static_cast<double>(m), 9, 2)
              << "\n";
  }

  // --- Real operator clones through the stream engine ------------------
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "\nStream engine with real operator clones (host has "
            << cores << " core(s); wall-clock gain is capped there):\n";
  std::cout << " clones |     wall(ms) | speed-up |     E_pm\n";
  std::cout << "--------+--------------+----------+----------\n";
  GridBucket bucket;
  bucket.cell = GridCellId{0, 0};
  bucket.points = cell;
  const size_t chunk_points =
      static_cast<size_t>((n + splits - 1) / splits);
  double base_wall = 0.0;
  RunStats stream_stats;  // widest clone config, written to --json_out
  for (size_t clones : {1u, 2u, 4u, 8u}) {
    ResourceModel resources;
    resources.cores = clones + 1;  // planner reserves one for scan+merge
    auto result = PipelineBuilder()
                      .WithPartialKMeans(pconfig)
                      .WithMerge(mconfig)
                      .WithResources(resources)
                      .WithChunkPoints(chunk_points)
                      .RunInMemory({bucket});
    PMKM_CHECK(result.ok()) << result.status();
    const double wall = result->wall_seconds * 1e3;
    if (clones == 1) base_wall = wall;
    stream_stats.total_ms = wall;
    stream_stats.min_mse = result->cells.at(bucket.cell).model.sse;
    stream_stats.partial_ms = 0.0;
    stream_stats.merge_ms = 0.0;
    for (const OperatorStats& op : result->operator_stats) {
      if (op.name.rfind("partial-kmeans", 0) == 0) {
        stream_stats.partial_ms =
            std::max(stream_stats.partial_ms, op.wall_seconds * 1e3);
      } else if (op.name == "merge-kmeans") {
        stream_stats.merge_ms = op.cpu_seconds * 1e3;
      }
    }
    std::cout << FmtInt(static_cast<int64_t>(result->plan.partial_clones),
                        7)
              << " | " << Fmt(wall, 12) << " | "
              << Fmt(base_wall / std::max(wall, 1e-9), 7, 2) << "x | "
              << Fmt(result->cells.at(bucket.cell).model.sse, 8, 0)
              << "\n";
  }
  std::cout << "\nExpected shape (paper §5.1): near-linear speed-up while "
               "machines <= p; the\nserial merge bounds the tail (Amdahl). "
               "Quality (E_pm) is identical under any\nclone count — "
               "parallelism never changes the computation.\n";
  if (!json_out.empty()) {
    PMKM_CHECK_OK(WriteBenchJson(json_out, "speedup_stream", stream_stats));
    std::cout << "wrote " << json_out << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
