// Shared support for the experiment harnesses that regenerate the paper's
// Table 2 and Figures 6-8, plus the ablation and baseline studies.
//
// Metric convention (matches the paper, see EXPERIMENTS.md):
//  - serial "Min MSE"       = E  = Σ ‖x − c(x)‖² over the raw cell points,
//    minimized over R restarts.
//  - partial/merge "Min MSE" = E_pm = Σ w_i ‖c_i − µ(c_i)‖² over the pooled
//    weighted centroids (the merge operator's objective).
// We additionally report SSE(raw): the merged centroids evaluated on the
// original points, an apples-to-apples quality number the paper does not
// print.

#ifndef PMKM_BENCH_BENCH_UTIL_H_
#define PMKM_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/partial_merge.h"
#include "common/flags.h"
#include "data/generator.h"

namespace pmkm {
namespace bench {

/// The paper's experiment grid (§5.1): cell sizes swept, D = 6, k = 40,
/// R = 10 seed sets, 5- and 10-way splits, 5 data versions per size.
struct ExperimentGrid {
  std::vector<int64_t> sizes{250, 2500, 12500, 25000, 50000, 75000};
  int64_t k = 40;
  int64_t restarts = 10;
  int64_t versions = 3;      // independent cells per configuration
  int64_t dim = 6;
  uint64_t data_seed = 2004; // ICDE 2004 ;-)

  /// Registers --k/--restarts/--versions/--max-n/--quick flags.
  void Register(FlagParser* parser);

  /// Applies --quick / --max-n adjustments after parsing.
  void Finalize();

  bool quick = false;
  int64_t max_n = 0;  // 0 = keep all sizes
};

/// Measured outcome of one algorithm on one cell.
struct RunStats {
  double partial_ms = 0.0;  // t_{C0-Ci} (0 for serial)
  double merge_ms = 0.0;    // t_merge   (0 for serial)
  double total_ms = 0.0;    // overall t
  double min_mse = 0.0;     // the paper's metric (see header comment)
  double sse_raw = 0.0;     // merged/serial centroids evaluated on raw data
  double iterations = 0.0;
};

/// Serial k-means baseline with R restarts (paper §5.1 "serial" rows).
RunStats RunSerial(const Dataset& cell, const ExperimentGrid& grid,
                   uint64_t seed);

/// Partial/merge k-means with the given split count, run with the paper's
/// configuration (R restarts per partition, heaviest-weight merge seeding).
/// `threads` = 1 reproduces the single-machine rows.
RunStats RunPartialMerge(const Dataset& cell, const ExperimentGrid& grid,
                         size_t splits, size_t threads, uint64_t seed);

/// Averages stats over several runs.
RunStats Average(const std::vector<RunStats>& runs);

/// Generates version `v` of the N-point MISR-like benchmark cell.
Dataset MakeCell(int64_t n, const ExperimentGrid& grid, int64_t version);

/// Fixed-width cell for table output.
std::string Fmt(double v, int width = 12, int precision = 1);
std::string FmtInt(int64_t v, int width = 8);

/// Prints the standard harness banner.
void PrintBanner(const std::string& experiment_id,
                 const std::string& description,
                 const ExperimentGrid& grid);

/// Machine-readable results: merges `benchmark` →
/// {wall_s, t_partial_s, t_merge_s, min_mse} into the JSON object stored
/// at `path` (read-modify-rewrite, so several harnesses invoked with the
/// same --json_out accumulate into one file, e.g. BENCH_stream.json).
Status WriteBenchJson(const std::string& path,
                      const std::string& benchmark, const RunStats& stats);

}  // namespace bench
}  // namespace pmkm

#endif  // PMKM_BENCH_BENCH_UTIL_H_
