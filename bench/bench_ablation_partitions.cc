// Experiment A2 — partition-count and slicing-strategy sweep. The paper
// fixes p ∈ {5, 10} and lists "different 'slicing' strategies" as future
// work (§6); this harness explores both axes: p from 2 to 32, random vs
// contiguous (salami) slicing.

#include <iostream>

#include "bench/bench_util.h"
#include "cluster/metrics.h"

namespace pmkm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  int64_t n = 50000;
  FlagParser parser;
  grid.Register(&parser);
  parser.AddInt("n", &n, "cell size");
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();
  if (grid.quick) n = std::min<int64_t>(n, 10000);

  PrintBanner("Ablation A2",
              "partition count p and slicing strategy (random vs salami)",
              grid);
  std::cout << "    p | strategy   |  partial(ms) |   merge(ms) |     "
               "E_pm |   SSE(raw)\n";
  std::cout << "------+------------+--------------+-------------+---------"
               "-+-----------\n";

  auto strategy_name = [](PartitionStrategy s) {
    switch (s) {
      case PartitionStrategy::kRandom:
        return "random    ";
      case PartitionStrategy::kContiguous:
        return "contiguous";
      case PartitionStrategy::kSpatial:
        return "spatial   ";
      case PartitionStrategy::kStripes:
        return "stripes   ";
    }
    return "?         ";
  };

  for (int64_t p : {2, 5, 10, 20, 32}) {
    for (PartitionStrategy strategy :
         {PartitionStrategy::kRandom, PartitionStrategy::kContiguous,
          PartitionStrategy::kSpatial, PartitionStrategy::kStripes}) {
      double partial_ms = 0.0, merge_ms = 0.0, e_pm = 0.0, raw = 0.0;
      for (int64_t v = 0; v < grid.versions; ++v) {
        const Dataset cell = MakeCell(n, grid, v);
        PartialMergeConfig config;
        config.partial.k = static_cast<size_t>(grid.k);
        config.partial.restarts = static_cast<size_t>(grid.restarts);
        config.partial.seed = 6000 + static_cast<uint64_t>(v);
        config.num_partitions = static_cast<size_t>(p);
        config.strategy = strategy;
        config.seed = 31 + static_cast<uint64_t>(v);
        auto result = PartialMergeKMeans(config).Run(cell);
        PMKM_CHECK(result.ok()) << result.status();
        partial_ms += result->partial_seconds * 1e3;
        merge_ms += result->merge_seconds * 1e3;
        e_pm += result->model.sse;
        raw += Sse(result->model.centroids, cell);
      }
      const double inv = 1.0 / static_cast<double>(grid.versions);
      std::cout << FmtInt(p, 5) << " | " << strategy_name(strategy)
                << " | " << Fmt(partial_ms * inv, 12) << " | "
                << Fmt(merge_ms * inv, 11) << " | " << Fmt(e_pm * inv, 8, 0)
                << " | " << Fmt(raw * inv, 10, 0) << "\n";
    }
  }
  std::cout << "\nReading: partial time falls with p (smaller chunks "
               "converge faster) while the\nmerge cost grows with k·p. "
               "random = paper's mostly-overlapping chunks; contiguous\n"
               "= arrival-order salami; spatial/stripes = the paper's §6 "
               "future-work slicers that\ncut along data axes (partition "
               "sizes become uneven, and per-chunk clusterings\nsee only "
               "a sub-region of attribute space).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
