#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cluster/metrics.h"
#include "common/stopwatch.h"
#include "obs/json.h"

namespace pmkm {
namespace bench {

void ExperimentGrid::Register(FlagParser* parser) {
  parser->AddInt("k", &k, "number of clusters (paper: 40)")
      .AddInt("restarts", &restarts, "random seed sets R (paper: 10)")
      .AddInt("versions", &versions,
              "independent data versions per size (paper: 5)")
      .AddInt("max-n", &max_n, "drop sweep sizes above this (0 = keep all)")
      .AddBool("quick", &quick,
               "fast sanity configuration (small sizes, R=3, 1 version)");
}

void ExperimentGrid::Finalize() {
  if (quick) {
    sizes = {250, 2500, 12500};
    restarts = std::min<int64_t>(restarts, 3);
    versions = 1;
  }
  if (max_n > 0) {
    std::erase_if(sizes, [&](int64_t n) { return n > max_n; });
  }
}

Dataset MakeCell(int64_t n, const ExperimentGrid& grid, int64_t version) {
  // One master stream per (size, version): every algorithm sees the exact
  // same cell, like the paper's shared on-disk grid buckets.
  Rng rng(grid.data_seed ^ (static_cast<uint64_t>(n) * 0x51ed2701u) ^
          (static_cast<uint64_t>(version) << 32));
  MisrCellSpec spec;
  spec.dim = static_cast<size_t>(grid.dim);
  return GenerateMisrLikeCell(static_cast<size_t>(n), &rng, spec);
}

RunStats RunSerial(const Dataset& cell, const ExperimentGrid& grid,
                   uint64_t seed) {
  KMeansConfig config;
  config.k = static_cast<size_t>(grid.k);
  config.restarts = static_cast<size_t>(grid.restarts);
  config.seed = seed;
  const Stopwatch watch;
  auto model = KMeans(config).Fit(cell);
  PMKM_CHECK(model.ok()) << model.status();
  RunStats stats;
  stats.total_ms = watch.ElapsedMillis();
  stats.min_mse = model->sse;
  stats.sse_raw = model->sse;
  stats.iterations = static_cast<double>(model->iterations);
  return stats;
}

RunStats RunPartialMerge(const Dataset& cell, const ExperimentGrid& grid,
                         size_t splits, size_t threads, uint64_t seed) {
  PartialMergeConfig config;
  config.partial.k = static_cast<size_t>(grid.k);
  config.partial.restarts = static_cast<size_t>(grid.restarts);
  config.partial.seed = seed;
  config.num_partitions = splits;
  config.num_threads = threads;
  config.seed = seed ^ 0xabcdef;
  auto result = PartialMergeKMeans(config).Run(cell);
  PMKM_CHECK(result.ok()) << result.status();
  RunStats stats;
  stats.partial_ms = result->partial_seconds * 1e3;
  stats.merge_ms = result->merge_seconds * 1e3;
  stats.total_ms = result->total_seconds * 1e3;
  stats.min_mse = result->model.sse;  // E_pm
  stats.sse_raw = Sse(result->model.centroids, cell);
  stats.iterations = static_cast<double>(result->model.iterations);
  return stats;
}

RunStats Average(const std::vector<RunStats>& runs) {
  RunStats avg;
  if (runs.empty()) return avg;
  for (const RunStats& r : runs) {
    avg.partial_ms += r.partial_ms;
    avg.merge_ms += r.merge_ms;
    avg.total_ms += r.total_ms;
    avg.min_mse += r.min_mse;
    avg.sse_raw += r.sse_raw;
    avg.iterations += r.iterations;
  }
  const double n = static_cast<double>(runs.size());
  avg.partial_ms /= n;
  avg.merge_ms /= n;
  avg.total_ms /= n;
  avg.min_mse /= n;
  avg.sse_raw /= n;
  avg.iterations /= n;
  return avg;
}

std::string Fmt(double v, int width, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, v);
  return buf;
}

std::string FmtInt(int64_t v, int width) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*lld", width,
                static_cast<long long>(v));
  return buf;
}

void PrintBanner(const std::string& experiment_id,
                 const std::string& description,
                 const ExperimentGrid& grid) {
  std::cout << "==========================================================="
               "=====================\n";
  std::cout << experiment_id << ": " << description << "\n";
  std::cout << "Nittel, Leung & Braverman, \"Scaling Clustering Algorithms "
               "for Massive Data\n"
               "Sets using Data Streams\" — k=" << grid.k
            << ", R=" << grid.restarts << ", D=" << grid.dim
            << ", versions=" << grid.versions << "\n";
  std::cout << "==========================================================="
               "=====================\n";
}

Status WriteBenchJson(const std::string& path,
                      const std::string& benchmark,
                      const RunStats& stats) {
  JsonValue doc = JsonValue::Object();
  if (std::ifstream in(path); in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    // A missing or unparseable file just starts a fresh document.
    if (auto parsed = JsonValue::Parse(buf.str());
        parsed.ok() && parsed->is_object()) {
      doc = std::move(parsed).value();
    }
  }
  JsonValue entry = JsonValue::Object();
  entry.Set("wall_s", stats.total_ms * 1e-3);
  entry.Set("t_partial_s", stats.partial_ms * 1e-3);
  entry.Set("t_merge_s", stats.merge_ms * 1e-3);
  entry.Set("min_mse", stats.min_mse);
  doc.Set(benchmark, std::move(entry));
  std::ofstream out(path, std::ios::trunc);
  out << doc.Dump(2) << "\n";
  if (!out.good()) return Status::IOError("cannot write " + path);
  return Status::OK();
}

}  // namespace bench
}  // namespace pmkm
