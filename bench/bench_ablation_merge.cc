// Experiment A5 — collective vs incremental merge (paper §3.3: "There are
// several options to perform this second merge k-means: a) incrementally,
// or b) collectively. From an information theoretic perspective, the
// second approach is able to generate a more faithful representation").
// This harness measures the claim: same partial centroid sets merged both
// ways, quality on E_pm-style error and on raw points, plus the memory
// the merge consumer must hold.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "cluster/incremental_merge.h"
#include "cluster/metrics.h"
#include "cluster/partial.h"
#include "common/stopwatch.h"

namespace pmkm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  int64_t n = 25000;
  FlagParser parser;
  grid.Register(&parser);
  parser.AddInt("n", &n, "cell size");
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();
  if (grid.quick) n = std::min<int64_t>(n, 5000);
  const size_t k = static_cast<size_t>(grid.k);

  PrintBanner("Ablation A5",
              "collective vs incremental merge of partial results", grid);
  std::cout << "     p | merge       |   SSE(raw)   | merge state | "
               "merge(ms)\n";
  std::cout << "-------+-------------+--------------+-------------+------"
               "----\n";

  for (int64_t p : {5, 10, 20}) {
    double col_raw = 0.0, inc_raw = 0.0, col_ms = 0.0, inc_ms = 0.0;
    size_t col_state = 0, inc_state = 0;
    for (int64_t v = 0; v < grid.versions; ++v) {
      const Dataset cell = MakeCell(n, grid, v);
      Rng rng(500 + static_cast<uint64_t>(v));
      const std::vector<Dataset> chunks =
          SplitRandom(cell, static_cast<size_t>(p), &rng);
      KMeansConfig pconfig;
      pconfig.k = k;
      pconfig.restarts = static_cast<size_t>(grid.restarts);
      pconfig.seed = 800 + static_cast<uint64_t>(v);
      const PartialKMeans partial(pconfig);
      std::vector<WeightedDataset> sets;
      for (size_t c = 0; c < chunks.size(); ++c) {
        auto result = partial.Cluster(chunks[c], c);
        PMKM_CHECK(result.ok()) << result.status();
        sets.push_back(std::move(result->centroids));
      }

      MergeKMeansConfig mconfig;
      mconfig.k = k;
      {
        WeightedDataset pooled(cell.dim());
        for (const auto& s : sets) pooled.AppendAll(s);
        col_state = std::max(col_state, pooled.size());
        const Stopwatch watch;
        auto model = MergeKMeans(mconfig).Merge(pooled);
        PMKM_CHECK(model.ok()) << model.status();
        col_ms += watch.ElapsedMillis();
        col_raw += Sse(model->centroids, cell);
      }
      {
        IncrementalMergeKMeans inc(cell.dim(), mconfig);
        const Stopwatch watch;
        size_t peak = 0;
        for (const auto& s : sets) {
          PMKM_CHECK_OK(inc.Push(s));
          peak = std::max(peak, inc.running().size() + s.size());
        }
        auto model = inc.Finish();
        PMKM_CHECK(model.ok()) << model.status();
        inc_ms += watch.ElapsedMillis();
        inc_raw += Sse(model->centroids, cell);
        inc_state = std::max(inc_state, peak);
      }
    }
    const double inv = 1.0 / static_cast<double>(grid.versions);
    std::cout << FmtInt(p, 6) << " | collective  | "
              << Fmt(col_raw * inv, 12, 0) << " | "
              << FmtInt(static_cast<int64_t>(col_state), 11) << " | "
              << Fmt(col_ms * inv, 8, 2) << "\n";
    std::cout << FmtInt(p, 6) << " | incremental | "
              << Fmt(inc_raw * inv, 12, 0) << " | "
              << FmtInt(static_cast<int64_t>(inc_state), 11) << " | "
              << Fmt(inc_ms * inv, 8, 2) << "\n";
  }
  std::cout << "\nReading: the collective merge should match or beat the "
               "incremental one on raw\nerror (the paper's information-"
               "theoretic argument), while the incremental merge\nholds "
               "only O(k + k_p) centroids at a time ('merge state') "
               "instead of O(k*p).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
