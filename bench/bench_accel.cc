// Experiment A6 — the "improved search mechanism" the paper deliberately
// skipped (§4): Hamerly triangle-inequality bounds vs the plain Lloyd
// scan. Quality must be identical (exact accelerator); time and the
// fraction of distance computations skipped are the payoff.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "cluster/hamerly.h"
#include "common/stopwatch.h"

namespace pmkm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  FlagParser parser;
  grid.Register(&parser);
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();

  PrintBanner("Ablation A6",
              "plain Lloyd vs Hamerly-accelerated iteration (exact)",
              grid);
  std::cout << "        N |    lloyd(ms) |  hamerly(ms) | speed-up | "
               "skip rate |  SSE match\n";
  std::cout << "----------+--------------+--------------+----------+-----"
               "------+-----------\n";

  std::vector<int64_t> sizes = grid.sizes;
  std::sort(sizes.begin(), sizes.end());
  for (int64_t n : sizes) {
    const Dataset cell = MakeCell(n, grid, 0);
    const WeightedDataset data = WeightedDataset::FromUnweighted(cell);
    Rng seed_rng(1234);
    auto seeds = SelectSeeds(data, static_cast<size_t>(grid.k),
                             SeedingMethod::kRandom, &seed_rng);
    PMKM_CHECK(seeds.ok()) << seeds.status();

    LloydConfig config;
    Rng r1(1);
    const Stopwatch lw;
    auto lloyd = RunWeightedLloyd(data, *seeds, config, &r1);
    const double lloyd_ms = lw.ElapsedMillis();
    PMKM_CHECK(lloyd.ok());

    Rng r2(1);
    HamerlyStats stats;
    const Stopwatch hw;
    auto hamerly = RunHamerlyLloyd(data, *seeds, config, &r2, &stats);
    const double hamerly_ms = hw.ElapsedMillis();
    PMKM_CHECK(hamerly.ok());

    const double total_points = static_cast<double>(
        stats.bound_skips + stats.full_scans);
    const bool match =
        std::abs(hamerly->sse - lloyd->sse) <=
        1e-6 * (1.0 + lloyd->sse);
    std::cout << FmtInt(n, 9) << " | " << Fmt(lloyd_ms, 12) << " | "
              << Fmt(hamerly_ms, 12) << " | "
              << Fmt(lloyd_ms / std::max(hamerly_ms, 1e-9), 7, 2)
              << "x | "
              << Fmt(total_points > 0
                         ? 100.0 * stats.bound_skips / total_points
                         : 0.0,
                     8, 1)
              << "% | " << (match ? "   exact" : " MISMATCH") << "\n";
  }
  std::cout << "\nReading: identical SSE in every row (the accelerator is "
               "exact); the skip rate\nand speed-up grow with N as "
               "clusters stabilize early and bounds stay tight.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
