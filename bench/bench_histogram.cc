// Experiment A4 — the motivating application (paper §1): compressing grid
// cells into multivariate histograms via clustering. Sweeps the bucket
// count k for compression ratio vs reconstruction fidelity, then sweeps
// the ECVQ rate penalty λ to demonstrate the paper's §3.3 proposal of
// choosing k on the fly.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "histogram/ecvq.h"
#include "histogram/histogram.h"

namespace pmkm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  int64_t n = 20000;  // "a typical 1°×1° MISR cell contains about 20,000
                      // data points per grid cell" (paper §5.1)
  FlagParser parser;
  grid.Register(&parser);
  parser.AddInt("n", &n, "cell size");
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();
  if (grid.quick) n = std::min<int64_t>(n, 5000);

  PrintBanner("Histogram A4",
              "multivariate histogram compression of a MISR-like cell",
              grid);
  const Dataset cell = MakeCell(n, grid, 0);

  std::cout << "Bucket-count sweep (partial/merge 10-split clustering, "
               "N=" << n << "):\n";
  std::cout << "    k | buckets | compression | recon MSE/pt |  "
               "cluster(ms)\n";
  std::cout << "------+---------+-------------+--------------+------------"
               "\n";
  for (int64_t k : {10, 20, 40, 80}) {
    ExperimentGrid kgrid = grid;
    kgrid.k = k;
    const Stopwatch watch;
    PartialMergeConfig config;
    config.partial.k = static_cast<size_t>(k);
    config.partial.restarts = static_cast<size_t>(grid.restarts);
    config.num_partitions = 10;
    auto result = PartialMergeKMeans(config).Run(cell);
    PMKM_CHECK(result.ok()) << result.status();
    const double cluster_ms = watch.ElapsedMillis();
    auto hist = MultivariateHistogram::Build(result->model, cell);
    PMKM_CHECK(hist.ok()) << hist.status();
    std::cout << FmtInt(k, 5) << " | "
              << FmtInt(static_cast<int64_t>(hist->num_buckets()), 7)
              << " | " << Fmt(hist->CompressionRatio(cell.size()), 10, 1)
              << "x | " << Fmt(hist->ReconstructionMse(cell), 12, 3)
              << " | " << Fmt(cluster_ms, 10)
              << "\n";
  }

  std::cout << "\nECVQ rate-penalty sweep (max_k=80): adaptive k per cell "
               "(paper §3.3 remarks):\n";
  std::cout << "   lambda | effective k | rate(bits/pt) | distortion/pt\n";
  std::cout << "----------+-------------+---------------+---------------\n";
  for (double lambda : {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    EcvqConfig config;
    config.max_k = 80;
    config.lambda = lambda;
    auto result = FitEcvq(cell, config);
    PMKM_CHECK(result.ok()) << result.status();
    std::cout << Fmt(lambda, 9, 1) << " | "
              << FmtInt(static_cast<int64_t>(result->effective_k), 11)
              << " | " << Fmt(result->rate_bits, 13, 3) << " | "
              << Fmt(result->distortion / static_cast<double>(n), 13, 3)
              << "\n";
  }
  std::cout << "\nReading: compression ratio falls ~linearly in k while "
               "reconstruction error\nimproves with diminishing returns; "
               "raising lambda starves unpopular codewords,\nshrinking the "
               "effective k (lower rate, higher distortion) — the "
               "rate-distortion\ntrade-off ECVQ manages automatically.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
