// Experiment T2 — reproduces the paper's Table 2: serial vs 5-split vs
// 10-split partial/merge k-means across cell sizes. Columns match the
// paper: t_{C0-Ci} (partial phase), t_merge, Min MSE, overall t — plus
// SSE(raw), our extra apples-to-apples quality column.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"

namespace pmkm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  FlagParser parser;
  grid.Register(&parser);
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();

  PrintBanner("Table 2",
              "serial vs partial/merge k-means (5-/10-split), per-cell "
              "times and errors", grid);
  std::cout << " data pts | case    | t C0-Ci(ms) |  t merge(ms) |     Min "
               "MSE |     SSE(raw) | overall t(ms)\n";
  std::cout << "----------+---------+-------------+--------------+---------"
               "-----+--------------+--------------\n";

  // The paper lists sizes descending; follow suit.
  std::vector<int64_t> sizes = grid.sizes;
  std::sort(sizes.rbegin(), sizes.rend());

  struct Case {
    const char* name;
    size_t splits;  // 0 = serial
  };
  const Case cases[] = {{"10split", 10}, {"5split", 5}, {"serial", 0}};

  for (int64_t n : sizes) {
    for (const Case& c : cases) {
      std::vector<RunStats> runs;
      for (int64_t v = 0; v < grid.versions; ++v) {
        const Dataset cell = MakeCell(n, grid, v);
        const uint64_t seed = 1000 + static_cast<uint64_t>(v);
        if (c.splits == 0) {
          runs.push_back(RunSerial(cell, grid, seed));
        } else {
          runs.push_back(
              RunPartialMerge(cell, grid, c.splits, /*threads=*/1, seed));
        }
      }
      const RunStats avg = Average(runs);
      std::cout << FmtInt(n, 9) << " | " << c.name
                << std::string(7 - std::string(c.name).size(), ' ')
                << " | " << (c.splits == 0 ? Fmt(0.0, 11)
                                           : Fmt(avg.partial_ms, 11))
                << " | " << (c.splits == 0 ? Fmt(0.0, 12)
                                           : Fmt(avg.merge_ms, 12))
                << " | " << Fmt(avg.min_mse, 12) << " | "
                << Fmt(avg.sse_raw, 12) << " | " << Fmt(avg.total_ms, 12)
                << "\n";
    }
    std::cout << "----------+---------+-------------+--------------+-------"
                 "-------+--------------+--------------\n";
  }
  std::cout << "Min MSE: serial = E over raw points; splits = E_pm over "
               "pooled weighted centroids\n(the paper's Table 2 metric). "
               "SSE(raw) evaluates every model on the raw points.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
