// M1 — micro-benchmarks (google-benchmark) for the kernels the experiment
// harnesses are built on: distance evaluation, nearest-centroid search,
// one Lloyd iteration, partial clustering of a chunk, queue throughput,
// and the observability primitives (to police the zero-cost-when-disabled
// budget of DESIGN.md §9).

#include <benchmark/benchmark.h>

#include "cluster/distance.h"
#include "cluster/hamerly.h"
#include "cluster/kernels/kernel.h"
#include "cluster/kmeans.h"
#include "cluster/merge.h"
#include "cluster/parallel_lloyd.h"
#include "cluster/partial.h"
#include "common/logging.h"
#include "data/generator.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/rolling.h"
#include "obs/trace.h"
#include "stream/queue.h"

namespace pmkm {
namespace {

Dataset MakePoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MisrCellSpec spec;
  spec.dim = dim;
  return GenerateMisrLikeCell(n, &rng, spec);
}

void BM_SquaredL2(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> a(dim), b(dim);
  for (size_t d = 0; d < dim; ++d) {
    a[d] = rng.Normal();
    b[d] = rng.Normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquaredL2)->Arg(6)->Arg(32)->Arg(128);

void BM_NearestCentroid(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const Dataset centroids = MakePoints(k, 6, 2);
  const Dataset points = MakePoints(1024, 6, 3);
  const std::vector<double> norms = CentroidSquaredNorms(centroids);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NearestCentroid(points.data() + (i % 1024) * 6, centroids, norms));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NearestCentroid)->Arg(10)->Arg(40)->Arg(160);

void BM_LloydIteration(benchmark::State& state) {
  // One full Lloyd pass (assignment + update) over an N-point cell, k=40.
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset points = MakePoints(n, 6, 4);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng rng(5);
  auto seeds = SelectSeeds(data, 40, SeedingMethod::kRandom, &rng);
  LloydConfig config;
  config.max_iterations = 1;
  for (auto _ : state) {
    Rng iter_rng(6);
    auto model = RunWeightedLloyd(data, *seeds, config, &iter_rng);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LloydIteration)->Arg(2500)->Arg(12500)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_HamerlyFit(benchmark::State& state) {
  // Full Hamerly run to convergence vs BM_LloydFit below, same seeds.
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset points = MakePoints(n, 6, 4);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng rng(5);
  auto seeds = SelectSeeds(data, 40, SeedingMethod::kRandom, &rng);
  for (auto _ : state) {
    Rng iter_rng(6);
    auto model =
        RunHamerlyLloyd(data, *seeds, LloydConfig{}, &iter_rng);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HamerlyFit)->Arg(2500)->Arg(12500)
    ->Unit(benchmark::kMillisecond);

void BM_LloydFit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset points = MakePoints(n, 6, 4);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng rng(5);
  auto seeds = SelectSeeds(data, 40, SeedingMethod::kRandom, &rng);
  for (auto _ : state) {
    Rng iter_rng(6);
    auto model =
        RunWeightedLloyd(data, *seeds, LloydConfig{}, &iter_rng);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LloydFit)->Arg(2500)->Arg(12500)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelLloydFit(benchmark::State& state) {
  // §3.4 option 3: the SortDataPoint step fanned over worker threads.
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset points = MakePoints(n, 6, 4);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng rng(5);
  auto seeds = SelectSeeds(data, 40, SeedingMethod::kRandom, &rng);
  ThreadPool pool(ThreadPool::DefaultThreadCount());
  for (auto _ : state) {
    Rng iter_rng(6);
    auto model = RunWeightedLloydParallel(data, *seeds, LloydConfig{},
                                          &iter_rng, &pool);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelLloydFit)->Arg(12500)
    ->Unit(benchmark::kMillisecond);

void BM_PartialChunk(benchmark::State& state) {
  // Full multi-restart partial k-means of one memory-sized chunk.
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset chunk = MakePoints(n, 6, 7);
  KMeansConfig config;
  config.k = 40;
  config.restarts = 3;
  const PartialKMeans partial(config);
  for (auto _ : state) {
    auto result = partial.Cluster(chunk, 0);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartialChunk)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_AssignBlock(benchmark::State& state, const DistanceKernel* kernel,
                    size_t dim) {
  // The assignment hot path in isolation: distances + argmin for a block
  // of points against k=40 centroids, per kernel implementation. Same
  // workload for every kernel, so items_per_second ratios are the
  // scalar-vs-SIMD speed-up the kernel layer buys.
  const size_t n = 4096;
  const size_t k = 40;
  const Dataset points = MakePoints(n, dim, 4);
  const Dataset centroids = MakePoints(k, dim, 2);
  CentroidBlock block;
  block.Load(centroids);
  std::vector<uint32_t> assign(n);
  std::vector<double> dist2(n);
  for (auto _ : state) {
    kernel->AssignBlock(points.data(), n, dim, block, assign.data(),
                        dist2.data());
    benchmark::DoNotOptimize(assign.data());
    benchmark::DoNotOptimize(dist2.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_AssignBlockSecond(benchmark::State& state,
                          const DistanceKernel* kernel, size_t dim) {
  // Same, with the second-best distance Hamerly's lower bound needs.
  const size_t n = 4096;
  const size_t k = 40;
  const Dataset points = MakePoints(n, dim, 4);
  const Dataset centroids = MakePoints(k, dim, 2);
  CentroidBlock block;
  block.Load(centroids);
  std::vector<uint32_t> assign(n);
  std::vector<double> dist2(n), second2(n);
  for (auto _ : state) {
    kernel->AssignBlock(points.data(), n, dim, block, assign.data(),
                        dist2.data(), second2.data());
    benchmark::DoNotOptimize(assign.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void RegisterKernelSweeps() {
  for (const DistanceKernel* kernel : AvailableKernels()) {
    for (size_t dim : {6u, 16u, 64u}) {
      const std::string tag =
          std::string(kernel->name()) + "/d" + std::to_string(dim);
      benchmark::RegisterBenchmark(("BM_AssignBlock/" + tag).c_str(),
                                   BM_AssignBlock, kernel, dim);
      benchmark::RegisterBenchmark(("BM_AssignBlockSecond/" + tag).c_str(),
                                   BM_AssignBlockSecond, kernel, dim);
    }
  }
}

void BM_QueueThroughput(benchmark::State& state) {
  // Producer/consumer pair shuttling PointChunk-sized payloads.
  const size_t batch = 256;
  for (auto _ : state) {
    BoundedBlockingQueue<Dataset> queue(8);
    queue.AddProducer();
    std::thread producer([&] {
      for (size_t i = 0; i < batch; ++i) {
        queue.Push(MakePoints(64, 6, i));
      }
      queue.CloseProducer();
    });
    size_t received = 0;
    while (auto item = queue.Pop()) ++received;
    producer.join();
    if (received != batch) state.SkipWithError("lost items");
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_QueueThroughput)->Unit(benchmark::kMillisecond);

void BM_MergeStep(benchmark::State& state) {
  // Weighted merge of p×k centroids (the paper's M = k·p input).
  const size_t p = static_cast<size_t>(state.range(0));
  Rng rng(8);
  WeightedDataset pooled(6);
  const Dataset centers = MakePoints(40 * p, 6, 9);
  for (size_t i = 0; i < centers.size(); ++i) {
    pooled.Append(centers.Row(i), 1.0 + rng.UniformInt(500));
  }
  MergeKMeansConfig config;
  config.k = 40;
  const MergeKMeans merger(config);
  for (auto _ : state) {
    auto model = merger.Merge(pooled);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * pooled.size());
}
BENCHMARK(BM_MergeStep)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_ObsCounter(benchmark::State& state) {
  MetricsRegistry registry;
  Counter& c = registry.counter("bench.counter");
  for (auto _ : state) {
    c.Increment();
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounter);

void BM_ObsHistogram(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("bench.histogram_us");
  double v = 1.0;
  for (auto _ : state) {
    h.Record(v);
    v = v < 1e6 ? v * 1.5 : 1.0;
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogram);

void BM_ObsSpanDisabled(benchmark::State& state) {
  // A null recorder must make spans free: this is what every per-chunk
  // span costs in an uninstrumented pipeline.
  for (auto _ : state) {
    ScopedSpan span(nullptr, "bench.span");
    benchmark::DoNotOptimize(span.enabled());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  TraceRecorder recorder;
  for (auto _ : state) {
    ScopedSpan span(&recorder, "bench.span");
    benchmark::DoNotOptimize(span.enabled());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsRollingHistogram(benchmark::State& state) {
  // The windowed variant's record cost: one CAS-claimed slot plus the
  // cumulative histogram — what scan.bucket_us pays per work unit.
  MetricsRegistry registry;
  RollingHistogram& h = registry.rolling_histogram("bench.rolling_us");
  double v = 1.0;
  for (auto _ : state) {
    h.Record(v);
    v = v < 1e6 ? v * 1.5 : 1.0;
  }
  benchmark::DoNotOptimize(h.total().count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRollingHistogram);

void BM_LogRateLimitedSuppressed(benchmark::State& state) {
  // A dropped rate-limited log line must cost one atomic CAS, not a
  // render: this is the hot-path budget for PMKM_LOG_RATELIMITED.
  internal::LogTokenBucket bucket(1e-3);  // effectively always dry
  bucket.AcquireAt(1);                    // drain the burst
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += bucket.AcquireAt(2);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogRateLimitedSuppressed);

void BM_ProfilerOff(benchmark::State& state) {
  // A stopped profiler adds zero instructions to compute code; this
  // pins the "no perf regression with the profiler off" acceptance bar
  // by timing a compute kernel while the global profiler exists unused.
  volatile double acc = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::CpuProfiler::Global().running());
    for (int i = 0; i < 64; ++i) {
      acc = acc + static_cast<double>(i);
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerOff);

}  // namespace
}  // namespace pmkm

int main(int argc, char** argv) {
  pmkm::RegisterKernelSweeps();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
