// Experiment F6 — reproduces Figure 6: overall execution time vs number of
// data points per grid cell, for serial k-means and partial/merge k-means
// with 5 and 10 chunks. Prints the three series (msec, like the paper's
// y-axis).
//
// --kernel selects the distance kernel for every k-means in the sweep
// (assignments are bit-identical across kernels, so only the times move).
// With --kernel=auto the JSON rows keep their historical names
// (fig6_serial, fig6_pm10); an explicit kernel suffixes them
// (fig6_serial_scalar, ...) so before/after rows coexist in one
// BENCH_stream.json.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_util.h"
#include "cluster/kernels/kernel.h"
#include "obs/json.h"

namespace pmkm {
namespace bench {
namespace {

// Merges a "host" entry (ISA + the kernel this run used) into the bench
// JSON, alongside the RunStats rows WriteBenchJson maintains.
Status WriteHostJson(const std::string& path, const std::string& kernel) {
  JsonValue doc = JsonValue::Object();
  if (std::ifstream in(path); in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    if (auto parsed = JsonValue::Parse(buf.str());
        parsed.ok() && parsed->is_object()) {
      doc = std::move(parsed).value();
    }
  }
  JsonValue host = JsonValue::Object();
  host.Set("isa", HostIsaDescription());
  host.Set("kernel", kernel);
  doc.Set("host", std::move(host));
  std::ofstream out(path, std::ios::trunc);
  out << doc.Dump(2) << "\n";
  if (!out.good()) return Status::IOError("cannot write " + path);
  return Status::OK();
}

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  grid.versions = 1;  // the curve shape needs fewer repeats than Table 2
  std::string json_out;
  std::string kernel_flag = "auto";
  FlagParser parser;
  grid.Register(&parser);
  parser.AddString("json_out", &json_out,
                   "merge machine-readable results into this JSON file")
      .AddString("kernel", &kernel_flag,
                 "distance kernel: scalar | avx2 | neon | auto");
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();

  auto kind = ParseKernelKind(kernel_flag);
  PMKM_CHECK_OK(kind.status());
  PMKM_CHECK_OK(SetDefaultKernel(*kind).status());
  const std::string kernel_name = DefaultKernel().name();
  const std::string row_suffix =
      *kind == KernelKind::kAuto ? "" : "_" + kernel_name;

  PrintBanner("Figure 6",
              "overall execution time, serial vs partial/merge k-means",
              grid);
  std::cout << "kernel: " << kernel_name << " (host "
            << HostIsaDescription() << ")\n";
  std::cout << "        N |   serial(ms) |  5-chunk(ms) | 10-chunk(ms) | "
               "serial/10-chunk\n";
  std::cout << "----------+--------------+--------------+--------------+-"
               "---------------\n";

  std::vector<int64_t> sizes = grid.sizes;
  std::sort(sizes.begin(), sizes.end());

  RunStats largest_serial, largest_ten;  // written to --json_out
  for (int64_t n : sizes) {
    std::vector<RunStats> serial, five, ten;
    for (int64_t v = 0; v < grid.versions; ++v) {
      const Dataset cell = MakeCell(n, grid, v);
      const uint64_t seed = 2000 + static_cast<uint64_t>(v);
      serial.push_back(RunSerial(cell, grid, seed));
      five.push_back(RunPartialMerge(cell, grid, 5, 1, seed));
      ten.push_back(RunPartialMerge(cell, grid, 10, 1, seed));
    }
    const RunStats s = Average(serial);
    const RunStats f = Average(five);
    const RunStats t = Average(ten);
    largest_serial = s;  // sizes are sorted: the last row is the largest N
    largest_ten = t;
    std::cout << FmtInt(n, 9) << " | " << Fmt(s.total_ms, 12) << " | "
              << Fmt(f.total_ms, 12) << " | " << Fmt(t.total_ms, 12)
              << " | " << Fmt(s.total_ms / std::max(t.total_ms, 1e-9), 10,
                              2)
              << "x\n";
  }
  std::cout << "\nExpected shape (paper Fig. 6): the serial curve grows "
               "super-linearly in N while\nboth partial/merge curves stay "
               "far flatter; the gap widens with N.\n";
  if (!json_out.empty()) {
    PMKM_CHECK_OK(WriteBenchJson(json_out, "fig6_serial" + row_suffix,
                                 largest_serial));
    PMKM_CHECK_OK(
        WriteBenchJson(json_out, "fig6_pm10" + row_suffix, largest_ten));
    PMKM_CHECK_OK(WriteHostJson(json_out, kernel_name));
    std::cout << "wrote " << json_out << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
