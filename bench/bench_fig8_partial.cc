// Experiment F8 — reproduces Figure 8: processing time of the partial
// k-means phase only, 5-split vs 10-split, as a function of cell size.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"

namespace pmkm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  grid.versions = 2;
  FlagParser parser;
  grid.Register(&parser);
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();

  PrintBanner("Figure 8",
              "partial k-means phase time, 5-split vs 10-split", grid);
  std::cout << "        N |  5-split partial(ms) | 10-split partial(ms) | "
               "5/10 ratio\n";
  std::cout << "----------+----------------------+----------------------+-"
               "----------\n";

  std::vector<int64_t> sizes = grid.sizes;
  std::sort(sizes.begin(), sizes.end());

  for (int64_t n : sizes) {
    std::vector<RunStats> five, ten;
    for (int64_t v = 0; v < grid.versions; ++v) {
      const Dataset cell = MakeCell(n, grid, v);
      const uint64_t seed = 4000 + static_cast<uint64_t>(v);
      five.push_back(RunPartialMerge(cell, grid, 5, 1, seed));
      ten.push_back(RunPartialMerge(cell, grid, 10, 1, seed));
    }
    const RunStats f = Average(five);
    const RunStats t = Average(ten);
    std::cout << FmtInt(n, 9) << " | " << Fmt(f.partial_ms, 20) << " | "
              << Fmt(t.partial_ms, 20) << " | "
              << Fmt(f.partial_ms / std::max(t.partial_ms, 1e-9), 9, 2)
              << "x\n";
  }
  std::cout << "\nExpected shape (paper Fig. 8): smaller partitions "
               "converge in fewer iterations,\nso the 10-split partial "
               "phase is substantially cheaper than the 5-split phase\n"
               "even though both process the same N points — the gap grows "
               "with N.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
