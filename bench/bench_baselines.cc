// Experiment A3 — places partial/merge k-means against the related-work
// algorithms the paper discusses (§2.2) and their modern descendants:
// BIRCH (CF-tree + global clustering), STREAM LOCALSEARCH (O'Callaghan et
// al. [7]), mini-batch k-means, online k-means, plus the serial baseline.
// All methods produce k centers; quality is SSE of those centers over the
// raw cell (the honest cross-algorithm metric).

#include <algorithm>
#include <iostream>

#include "baselines/birch.h"
#include "baselines/minibatch.h"
#include "baselines/online.h"
#include "baselines/stream_ls.h"
#include "bench/bench_util.h"
#include "cluster/metrics.h"
#include "common/stopwatch.h"

namespace pmkm {
namespace bench {
namespace {

struct Row {
  std::string name;
  double ms = 0.0;
  double sse_raw = 0.0;
};

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  int64_t n = 50000;
  FlagParser parser;
  grid.Register(&parser);
  parser.AddInt("n", &n, "cell size");
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();
  if (grid.quick) n = std::min<int64_t>(n, 10000);
  const size_t k = static_cast<size_t>(grid.k);

  PrintBanner("Baselines A3",
              "partial/merge vs BIRCH, STREAM LocalSearch, mini-batch, "
              "online k-means", grid);
  std::cout << "N=" << n << ", all methods emit k=" << k << " centers\n\n";
  std::cout << " method                |     time(ms) |     SSE(raw) | vs "
               "serial SSE\n";
  std::cout << "-----------------------+--------------+--------------+----"
               "----------\n";

  std::vector<Row> rows;
  double serial_sse = 0.0;
  for (int64_t v = 0; v < grid.versions; ++v) {
    const Dataset cell = MakeCell(n, grid, v);
    const uint64_t seed = 7000 + static_cast<uint64_t>(v);
    auto add = [&](size_t idx, const std::string& name, double ms,
                   double sse) {
      if (rows.size() <= idx) rows.push_back(Row{name, 0.0, 0.0});
      rows[idx].ms += ms;
      rows[idx].sse_raw += sse;
    };

    {
      const RunStats s = RunSerial(cell, grid, seed);
      add(0, "serial k-means", s.total_ms, s.sse_raw);
      serial_sse += s.sse_raw;
    }
    {
      const RunStats s = RunPartialMerge(cell, grid, 10, 1, seed);
      add(1, "partial/merge 10-split", s.total_ms, s.sse_raw);
    }
    {
      // Partial/merge plus a 3-iteration raw refinement pass (second
      // look): the cheap fix for the E_pm-vs-raw gap.
      PartialMergeConfig config;
      config.partial.k = k;
      config.partial.restarts = static_cast<size_t>(grid.restarts);
      config.partial.seed = seed;
      config.num_partitions = 10;
      config.seed = seed ^ 0xabcdef;
      config.refine_iterations = 3;
      const Stopwatch watch;
      auto result = PartialMergeKMeans(config).Run(cell);
      PMKM_CHECK(result.ok()) << result.status();
      add(2, "pm 10-split + refine3", watch.ElapsedMillis(),
          Sse(result->model.centroids, cell));
    }
    {
      BirchConfig config;
      config.k = k;
      config.max_leaf_entries = 4 * k;
      config.global.restarts = static_cast<size_t>(grid.restarts);
      config.global.seed = seed;
      Birch birch(cell.dim(), config);
      const Stopwatch watch;
      PMKM_CHECK_OK(birch.InsertAll(cell));
      auto model = birch.Finish();
      PMKM_CHECK(model.ok()) << model.status();
      add(3, "BIRCH (CF-tree)", watch.ElapsedMillis(),
          Sse(model->centroids, cell));
    }
    {
      StreamLsConfig config;
      config.k = k;
      config.chunk_points = static_cast<size_t>(
          std::max<int64_t>(1000, n / 10));
      config.seed = seed;
      StreamLocalSearch stream(cell.dim(), config);
      const Stopwatch watch;
      PMKM_CHECK_OK(stream.Append(cell));
      auto model = stream.Finish();
      PMKM_CHECK(model.ok()) << model.status();
      add(4, "STREAM LocalSearch", watch.ElapsedMillis(),
          Sse(model->centroids, cell));
    }
    {
      MiniBatchConfig config;
      config.k = k;
      config.seed = seed;
      const Stopwatch watch;
      auto model = MiniBatchKMeans(cell, config);
      PMKM_CHECK(model.ok()) << model.status();
      add(5, "mini-batch k-means", watch.ElapsedMillis(), model->sse);
    }
    {
      OnlineKMeansConfig config;
      config.k = k;
      config.seed = seed;
      OnlineKMeans online(cell.dim(), config);
      const Stopwatch watch;
      PMKM_CHECK_OK(online.ObserveAll(cell));
      const double ms = watch.ElapsedMillis();
      auto model = online.Snapshot(&cell);
      PMKM_CHECK(model.ok()) << model.status();
      add(6, "online k-means", ms, model->sse);
    }
  }

  const double inv = 1.0 / static_cast<double>(grid.versions);
  serial_sse *= inv;
  for (const Row& row : rows) {
    std::string name = row.name;
    name.resize(22, ' ');
    std::cout << " " << name << "| " << Fmt(row.ms * inv, 12) << " | "
              << Fmt(row.sse_raw * inv, 12, 0) << " | "
              << Fmt(row.sse_raw * inv / std::max(serial_sse, 1e-9), 9, 2)
              << "x\n";
  }
  std::cout << "\nReading: partial/merge should land at or below the "
               "serial SSE at a fraction of\nits time; BIRCH and STREAM "
               "trade quality for strict memory bounds; mini-batch\nis "
               "fast but noisier; online k-means is cheapest and worst.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
