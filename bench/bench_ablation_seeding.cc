// Experiment A1 — seeding ablation for the merge step. The paper (§3.3)
// argues for seeding the merge k-means with the k HEAVIEST weighted
// centroids instead of random ones ("forces the algorithm to take into
// account which data points are likely to represent significant cluster
// centroids already"). This harness quantifies that design choice:
// heaviest-weight vs uniform-random vs k-means++ merge seeding, same
// partial outputs.

#include <iostream>

#include "bench/bench_util.h"
#include "cluster/metrics.h"

namespace pmkm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  ExperimentGrid grid;
  int64_t n = 25000;
  int64_t splits = 10;
  FlagParser parser;
  grid.Register(&parser);
  parser.AddInt("n", &n, "cell size").AddInt("splits", &splits,
                                             "partition count p");
  const Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  PMKM_CHECK_OK(st);
  grid.Finalize();
  if (grid.quick) n = std::min<int64_t>(n, 5000);

  PrintBanner("Ablation A1",
              "merge-step seeding: heaviest-weight (paper) vs random vs "
              "k-means++", grid);

  struct Variant {
    const char* name;
    SeedingMethod method;
    size_t restarts;
  };
  const Variant variants[] = {
      {"heaviest (paper)", SeedingMethod::kHeaviestWeight, 1},
      {"random, R=1", SeedingMethod::kRandom, 1},
      {"random, R=10", SeedingMethod::kRandom, 10},
      {"kmeans++, R=1", SeedingMethod::kKMeansPlusPlus, 1},
  };

  std::cout << " variant           |     E_pm     |   SSE(raw)   | merge "
               "iters | merge(ms)\n";
  std::cout << "-------------------+--------------+--------------+-------"
               "------+----------\n";
  for (const Variant& variant : variants) {
    double e_pm = 0.0, sse_raw = 0.0, iters = 0.0, ms = 0.0;
    for (int64_t v = 0; v < grid.versions; ++v) {
      const Dataset cell = MakeCell(n, grid, v);
      PartialMergeConfig config;
      config.partial.k = static_cast<size_t>(grid.k);
      config.partial.restarts = static_cast<size_t>(grid.restarts);
      config.partial.seed = 5000 + static_cast<uint64_t>(v);
      config.num_partitions = static_cast<size_t>(splits);
      config.seed = 77 + static_cast<uint64_t>(v);
      config.merge.k = 0;
      config.merge.seeding = variant.method;
      config.merge.restarts = variant.restarts;
      config.merge.seed = 99 + static_cast<uint64_t>(v);
      auto result = PartialMergeKMeans(config).Run(cell);
      PMKM_CHECK(result.ok()) << result.status();
      e_pm += result->model.sse;
      sse_raw += Sse(result->model.centroids, cell);
      iters += static_cast<double>(result->model.iterations);
      ms += result->merge_seconds * 1e3;
    }
    const double inv = 1.0 / static_cast<double>(grid.versions);
    std::string name = variant.name;
    name.resize(18, ' ');
    std::cout << name << "| " << Fmt(e_pm * inv, 12) << " | "
              << Fmt(sse_raw * inv, 12) << " | " << Fmt(iters * inv, 11, 1)
              << " | " << Fmt(ms * inv, 8, 2) << "\n";
  }
  std::cout << "\nReading: heaviest-weight seeding should match or beat "
               "single-shot random\nseeding at a fraction of the restarts "
               "(it is deterministic), supporting the\npaper's §3.3 design "
               "argument.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pmkm

int main(int argc, char** argv) { return pmkm::bench::Main(argc, argv); }
