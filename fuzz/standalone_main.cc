// Standalone replay driver for the fuzz harnesses, used when the
// toolchain has no libFuzzer (GCC). Links against a harness's
// LLVMFuzzerTestOneInput and gives the same command line shape as
// libFuzzer, so scripts/run_fuzz_smoke.sh works under either compiler:
//
//   fuzz_json [corpus-dir|file ...] [-max_total_time=SECONDS]
//
// Behaviour: every corpus input is replayed once; if a time budget is
// given, the remaining budget is spent replaying deterministic mutations
// (byte flips / truncations / insertions from a fixed-seed splitmix64
// stream) of the corpus. This is not coverage-guided fuzzing — it is a
// regression replay plus a cheap robustness sweep — but any input that
// crashes is written to crash-<n>.bin exactly like libFuzzer would
// preserve it, and the run is reproducible: the mutation stream depends
// only on the corpus bytes and the iteration counter.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// Deterministic PRNG for the mutation stream (fixed seed; reproducible).
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void CollectInputs(const std::string& arg, std::vector<std::string>* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    for (const auto& entry : fs::directory_iterator(arg, ec)) {
      if (entry.is_regular_file()) out->push_back(entry.path().string());
    }
  } else if (fs::is_regular_file(arg, ec)) {
    out->push_back(arg);
  }
  // Missing paths are tolerated: libFuzzer invocations pass a writable
  // output corpus directory that may not exist yet.
}

void Mutate(std::vector<uint8_t>* input, uint64_t* rng) {
  if (input->empty()) {
    input->push_back(static_cast<uint8_t>(SplitMix64(rng)));
    return;
  }
  const int kind = static_cast<int>(SplitMix64(rng) % 4);
  const size_t pos = SplitMix64(rng) % input->size();
  switch (kind) {
    case 0:  // flip bits in one byte
      (*input)[pos] ^= static_cast<uint8_t>(SplitMix64(rng) | 1);
      break;
    case 1:  // truncate
      input->resize(pos);
      break;
    case 2:  // insert a byte
      input->insert(input->begin() + static_cast<ptrdiff_t>(pos),
                    static_cast<uint8_t>(SplitMix64(rng)));
      break;
    default:  // overwrite with an interesting value
      (*input)[pos] = static_cast<uint8_t>(
          SplitMix64(rng) % 2 == 0 ? 0xff : 0x00);
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long max_total_time = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-max_total_time=", 16) == 0) {
      max_total_time = std::strtol(arg + 16, nullptr, 10);
    } else if (arg[0] == '-') {
      // Ignore other libFuzzer flags (-runs=, -seed=, ...) for CLI
      // compatibility; this driver has no equivalents.
      std::fprintf(stderr, "standalone driver: ignoring flag %s\n", arg);
    } else {
      CollectInputs(arg, &files);
    }
  }

  std::vector<std::vector<uint8_t>> corpus;
  corpus.reserve(files.size());
  for (const auto& f : files) corpus.push_back(ReadFile(f));
  if (corpus.empty()) corpus.push_back({});  // always run at least once

  size_t runs = 0;
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++runs;
  }

  if (max_total_time > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(max_total_time);
    uint64_t rng = 0x706d6b6d2d66757aULL;  // fixed seed: reproducible
    while (std::chrono::steady_clock::now() < deadline) {
      std::vector<uint8_t> input = corpus[SplitMix64(&rng) % corpus.size()];
      const int rounds = 1 + static_cast<int>(SplitMix64(&rng) % 4);
      for (int i = 0; i < rounds; ++i) Mutate(&input, &rng);
      LLVMFuzzerTestOneInput(input.data(), input.size());
      ++runs;
    }
  }

  std::fprintf(stderr,
               "standalone driver: %zu run(s) over %zu corpus input(s), "
               "no crashes\n",
               runs, files.size());
  return 0;
}
