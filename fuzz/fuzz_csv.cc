// Fuzz harness for the CSV importers (src/data/csv.cc): ReadCsv and
// ReadWeightedCsv over arbitrary bytes. Either call must return a Status
// or a structurally consistent dataset — never crash, hang, or produce a
// dataset whose flat size disagrees with rows x dim.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "data/csv.h"
#include "fuzz_io_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 18)) return 0;  // CSV parsing is line-based; cap cost
  const std::string path = pmkm_fuzz::WriteTempInput("csv", data, size);

  pmkm::Result<pmkm::Dataset> ds = pmkm::ReadCsv(path);
  if (ds.ok()) {
    const pmkm::Dataset& d = ds.value();
    if (d.values().size() != d.size() * d.dim()) std::abort();
  }

  pmkm::Result<pmkm::WeightedDataset> wds = pmkm::ReadWeightedCsv(path);
  if (wds.ok()) {
    const pmkm::WeightedDataset& w = wds.value();
    if (w.weights().size() != w.points().size()) std::abort();
  }
  return 0;
}
