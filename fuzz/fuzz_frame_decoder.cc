// Fuzz harness for the serve wire-protocol frame decoder
// (src/serve/protocol.cc). The decoder fronts a network socket, so it
// must treat every byte as hostile: a corrupt length can never drive a
// huge allocation (kMaxFramePayload cap), a CRC mismatch must surface as
// a Status, and "need more bytes" must be a stable fixed point (consumed
// == 0, no partial state). Frames that do decode are re-encoded and the
// payload codecs are driven over the decoded payload — the decoded frame
// must round-trip to exactly the bytes consumed.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "serve/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 18)) return 0;
  const std::span<const uint8_t> input(data, size);

  // The hello decoder shares the buffer discipline; cheap to cover here.
  (void)pmkm::serve::DecodeHello(input);

  size_t consumed = ~size_t{0};
  pmkm::Result<std::optional<pmkm::serve::Frame>> frame =
      pmkm::serve::DecodeFrame(input, &consumed);
  if (!frame.ok()) {
    return 0;  // poisoned stream: rejected without crashing is the goal
  }
  if (!frame.value().has_value()) {
    // "Need more bytes" must not claim progress.
    if (consumed != 0) std::abort();
    return 0;
  }

  // A decoded frame must re-encode to exactly the bytes it was decoded
  // from: encode and decode are inverses on the wire.
  const pmkm::serve::Frame& f = *frame.value();
  if (consumed > size) std::abort();
  const std::vector<uint8_t> reencoded = pmkm::serve::EncodeFrame(
      static_cast<pmkm::serve::FrameType>(f.type), f.payload);
  if (reencoded.size() != consumed) std::abort();
  if (std::memcmp(reencoded.data(), data, consumed) != 0) std::abort();

  // Drive every payload codec over the (CRC-clean but otherwise
  // arbitrary) payload; each must reject or accept without crashing.
  (void)pmkm::serve::DecodeJobSpec(f.payload, 1);
  (void)pmkm::serve::DecodeJobSpec(f.payload, 2);
  (void)pmkm::serve::DecodeJobInfo(f.payload);
  (void)pmkm::serve::DecodeJobList(f.payload);
  (void)pmkm::serve::DecodeModelSet(f.payload);
  (void)pmkm::serve::DecodeU64(f.payload);
  (void)pmkm::serve::DecodeReply(f.payload);
  return 0;
}
