// Shared helper for fuzz harnesses whose target API takes a file path
// rather than a byte span (CSV reader, bucket reader): persist the fuzz
// input to one per-process scratch file and hand back its path. The same
// file is rewritten on every iteration, so fuzzing does not leak temp
// files or inodes.

#ifndef PMKM_FUZZ_FUZZ_IO_UTIL_H_
#define PMKM_FUZZ_FUZZ_IO_UTIL_H_

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

namespace pmkm_fuzz {

/// Writes `size` bytes of `data` to a stable per-process scratch path
/// (distinguished by `tag`) and returns the path. Aborts on I/O failure —
/// a broken scratch file would silently turn the fuzzer into a no-op.
inline std::string WriteTempInput(const char* tag, const uint8_t* data,
                                  size_t size) {
  static const std::string* path = [] {
    auto* p = new std::string();  // intentionally leaked process-lifetime
    *p = (std::filesystem::temp_directory_path() /
          ("pmkm_fuzz_scratch_" + std::to_string(::getpid())))
             .string();
    return p;
  }();
  const std::string file = *path + "." + tag;
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  out.close();
  if (!out) std::abort();
  return file;
}

}  // namespace pmkm_fuzz

#endif  // PMKM_FUZZ_FUZZ_IO_UTIL_H_
