// Fuzz harness for the binary grid-bucket format (src/data/io.cc): both
// the streaming GridBucketReader and the one-shot ReadGridBucket over
// arbitrary bytes. A hostile header must be rejected by Open() before it
// can drive an allocation (dim cap, count-vs-file-size check), and a
// corrupt payload must surface as a Status (checksum / truncation), never
// a crash. Accepted data must be structurally consistent.

#include <cstdint>
#include <cstdlib>

#include "data/io.h"
#include "fuzz_io_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 18)) return 0;  // payload scales with file size anyway
  const std::string path = pmkm_fuzz::WriteTempInput("pmkb", data, size);

  pmkm::Result<pmkm::GridBucketReader> opened =
      pmkm::GridBucketReader::Open(path);
  if (opened.ok()) {
    pmkm::GridBucketReader& reader = opened.value();
    pmkm::Dataset chunk(reader.dim());
    size_t seen = 0;
    for (;;) {
      pmkm::Result<bool> more = reader.Next(257, &chunk);
      if (!more.ok() || !more.value()) break;
      if (chunk.dim() != reader.dim()) std::abort();
      seen += chunk.size();
      if (seen > reader.total_points()) std::abort();  // over-delivery
    }
  }

  // The convenience one-shot path shares the reader but exercises the
  // Reserve/AppendAll assembly on top of it.
  pmkm::Result<pmkm::GridBucket> bucket = pmkm::ReadGridBucket(path);
  if (bucket.ok()) {
    const pmkm::GridBucket& b = bucket.value();
    if (b.points.values().size() != b.points.size() * b.points.dim()) {
      std::abort();
    }
  }
  return 0;
}
