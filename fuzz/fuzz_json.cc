// Fuzz harness for JsonValue::Parse (src/obs/json.cc) — the parser that
// reads back metrics/trace/run-stats files in `pmkm_inspect`. Invariants
// checked beyond "does not crash":
//   1. Parse never recurses past its depth cap (stack safety on "[[[[").
//   2. Accepted documents round-trip: Dump() of a parsed value must
//      itself parse (the exporters rely on this).

#include <cstdint>
#include <cstdlib>
#include <string>

#include "obs/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;  // bound per-input cost
  const std::string text(reinterpret_cast<const char*>(data), size);

  pmkm::Result<pmkm::JsonValue> parsed = pmkm::JsonValue::Parse(text);
  if (!parsed.ok()) return 0;

  const std::string compact = parsed.value().Dump();
  pmkm::Result<pmkm::JsonValue> again = pmkm::JsonValue::Parse(compact);
  if (!again.ok()) std::abort();  // round-trip invariant violated

  // Pretty-printed output must also stay parseable.
  const std::string pretty = parsed.value().Dump(/*indent=*/2);
  pmkm::Result<pmkm::JsonValue> pretty_again = pmkm::JsonValue::Parse(pretty);
  if (!pretty_again.ok()) std::abort();
  return 0;
}
