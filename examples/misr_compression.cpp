// MISR compression pipeline — the paper's motivating application end to
// end:
//
//   swath simulation → grid buckets on disk → streamed partial/merge
//   k-means per cell → multivariate histograms → compression report.
//
//   $ ./build/examples/misr_compression [--orbits=8] [--k=12]
//
// This mirrors the EOSDIS scenario of §1: satellite stripes are binned
// into 1°×1° cells, each cell is clustered with bounded memory, and the
// resulting weighted centroids become the cell's compressed histogram.

#include <filesystem>
#include <iostream>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "data/misr.h"
#include "histogram/histogram.h"
#include "stream/engine.h"

int main(int argc, char** argv) {
  int64_t orbits = 8;
  int64_t k = 12;
  int64_t min_cell_points = 200;
  std::string workdir =
      (std::filesystem::temp_directory_path() / "pmkm_misr_demo").string();
  pmkm::FlagParser parser;
  parser.AddInt("orbits", &orbits, "satellite orbits to simulate")
      .AddInt("k", &k, "histogram buckets per cell")
      .AddInt("min-cell-points", &min_cell_points,
              "skip cells smaller than this")
      .AddString("workdir", &workdir, "where grid buckets are written");
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok()) {
    std::cerr << st << "\n" << parser.Usage(argv[0]);
    return 1;
  }

  // 1. Acquire: simulate the instrument and bin footprints into cells.
  pmkm::MisrSwathSimulator sim;
  std::cout << "simulating " << orbits << " orbit(s)...\n";
  auto grid = sim.SimulateToGrid(static_cast<size_t>(orbits),
                                 /*cell_degrees=*/10.0);
  if (!grid.ok()) {
    std::cerr << grid.status() << "\n";
    return 1;
  }
  std::cout << "  " << grid->num_points() << " footprints in "
            << grid->num_cells() << " cells\n";

  // 2. Stage: write per-cell binary grid buckets (the paper's §3.1 input
  //    format), keeping only reasonably full cells.
  std::filesystem::remove_all(workdir);
  std::filesystem::create_directories(workdir);
  std::vector<std::string> paths;
  size_t staged_points = 0;
  for (const auto& [id, bucket] : grid->buckets()) {
    if (bucket.size() < static_cast<size_t>(min_cell_points)) continue;
    pmkm::GridBucket gb;
    gb.cell = id;
    gb.points = bucket;
    const std::string path = workdir + "/" + id.ToString() + ".pmkb";
    PMKM_CHECK_OK(pmkm::WriteGridBucket(path, gb));
    paths.push_back(path);
    staged_points += bucket.size();
  }
  std::cout << "  staged " << paths.size() << " bucket files ("
            << staged_points << " points) under " << workdir << "\n";
  if (paths.empty()) {
    std::cerr << "no cell reached --min-cell-points; try more orbits\n";
    return 1;
  }

  // 3. Cluster: one streamed query plan over all buckets. The optimizer
  //    picks the partition size from the memory budget and clones partial
  //    operators across cores.
  pmkm::KMeansConfig partial;
  partial.k = static_cast<size_t>(k);
  partial.restarts = 5;
  pmkm::MergeKMeansConfig merge;
  merge.k = static_cast<size_t>(k);
  pmkm::ResourceModel resources;
  resources.memory_bytes_per_operator = 64 << 10;  // tight: force chunking

  const pmkm::Stopwatch watch;
  auto run = pmkm::PipelineBuilder()
                 .WithPartialKMeans(partial)
                 .WithMerge(merge)
                 .WithResources(resources)
                 .Run(paths);
  if (!run.ok()) {
    std::cerr << "stream run failed: " << run.status() << "\n";
    return 1;
  }
  std::cout << "  plan: chunk=" << run->plan.chunk_points << " points, "
            << run->plan.partial_clones << " partial clone(s); clustered "
            << run->cells.size() << " cells in "
            << watch.ElapsedSeconds() << " s\n";

  // 4. Compress: one multivariate histogram per cell.
  std::cout << "\n cell          |  points | buckets | ratio  | E_pm\n";
  std::cout << "---------------+---------+---------+--------+---------\n";
  double total_raw_bytes = 0.0, total_hist_bytes = 0.0;
  size_t shown = 0;
  for (const auto& [id, cell] : run->cells) {
    auto hist = pmkm::MultivariateHistogram::FromModel(cell.model);
    PMKM_CHECK(hist.ok()) << hist.status();
    const double ratio = hist->CompressionRatio(cell.input_points);
    total_raw_bytes += static_cast<double>(cell.input_points) *
                       cell.model.dim() * sizeof(double);
    total_hist_bytes += static_cast<double>(hist->CompressedBytes());
    if (shown++ < 10) {
      std::string name = id.ToString();
      name.resize(14, ' ');
      std::printf(" %s| %7zu | %7zu | %5.1fx | %8.0f\n", name.c_str(),
                  cell.input_points, hist->num_buckets(), ratio,
                  cell.model.sse);
    }
  }
  if (run->cells.size() > shown) {
    std::cout << " ... (" << run->cells.size() - shown
              << " more cells)\n";
  }
  std::cout << "\noverall compression: "
            << total_raw_bytes / (1 << 20) << " MiB -> "
            << total_hist_bytes / (1 << 10) << " KiB ("
            << total_raw_bytes / total_hist_bytes << "x)\n";
  return 0;
}
