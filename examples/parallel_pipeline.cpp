// Hand-built stream pipeline: wiring scan, cloned partial operators and
// the merge operator explicitly over smart queues (paper Figs. 3 and 5),
// instead of letting the planner do it. Useful as a template for embedding
// the operators in a larger dataflow.
//
//   $ ./build/examples/parallel_pipeline [--cells=4] [--clones=3]

#include <iostream>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "data/generator.h"
#include "stream/ops.h"

int main(int argc, char** argv) {
  int64_t cells = 4;
  int64_t points_per_cell = 8000;
  int64_t clones = 3;
  int64_t chunk = 1000;
  int64_t k = 16;
  pmkm::FlagParser parser;
  parser.AddInt("cells", &cells, "grid cells to cluster")
      .AddInt("points", &points_per_cell, "points per cell")
      .AddInt("clones", &clones, "partial k-means operator clones")
      .AddInt("chunk", &chunk, "partition size (points)")
      .AddInt("k", &k, "clusters per cell");
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok()) {
    std::cerr << st << "\n" << parser.Usage(argv[0]);
    return 1;
  }

  // In-memory cells standing in for grid-bucket files.
  pmkm::Rng rng(11);
  std::vector<pmkm::GridBucket> buckets;
  for (int64_t c = 0; c < cells; ++c) {
    pmkm::GridBucket bucket;
    bucket.cell = pmkm::GridCellId{static_cast<int32_t>(c), 0};
    bucket.points = pmkm::GenerateMisrLikeCell(
        static_cast<size_t>(points_per_cell), &rng);
    buckets.push_back(std::move(bucket));
  }

  // The two smart queues of the plan (paper Fig. 5). Their bounded
  // capacity is the back-pressure that keeps memory flat no matter how
  // fast the scan runs.
  auto points = std::make_shared<pmkm::PointChunkQueue>(4);
  auto centroids = std::make_shared<pmkm::CentroidQueue>(4);

  pmkm::KMeansConfig partial_config;
  partial_config.k = static_cast<size_t>(k);
  partial_config.restarts = 5;
  pmkm::MergeKMeansConfig merge_config;
  merge_config.k = static_cast<size_t>(k);

  // This example exists to show the raw operator wiring beneath the
  // engine. pmkm-lint: allow(direct-run)
  pmkm::Executor executor;
  executor.Add(std::make_unique<pmkm::MemoryScanOperator>(
      std::move(buckets), static_cast<size_t>(chunk), points));
  for (int64_t c = 0; c < clones; ++c) {
    executor.Add(std::make_unique<pmkm::PartialKMeansOperator>(
        partial_config, points, centroids,
        "partial-clone#" + std::to_string(c)));
  }
  auto merge = std::make_unique<pmkm::MergeKMeansOperator>(merge_config,
                                                           centroids);
  auto* merge_raw = merge.get();
  executor.Add(std::move(merge));

  std::cout << "pipeline: memory-scan -> " << clones
            << " x partial-kmeans -> merge-kmeans ("
            << executor.num_operators() << " operators)\n";

  const pmkm::Stopwatch watch;
  const pmkm::Status run = executor.Run();
  if (!run.ok()) {
    std::cerr << "pipeline failed: " << run << "\n";
    return 1;
  }
  std::cout << "done in " << watch.ElapsedMillis() << " ms\n\n";

  for (const auto& [id, cell] : merge_raw->results()) {
    std::cout << id.ToString() << ": " << cell.input_points
              << " points -> " << cell.pooled_centroids
              << " partial centroids -> k=" << cell.model.k()
              << ", E_pm=" << cell.model.sse << " (merge "
              << cell.merge_seconds * 1e3 << " ms)\n";
  }
  return 0;
}
