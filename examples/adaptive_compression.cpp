// Adaptive-k compression (paper §3.3 remarks): instead of one fixed k per
// cell, each partition is quantized with ECVQ under a rate penalty λ, so
// the codebook size adapts to the partition's complexity; the weighted
// codewords are then merged as usual. Compares against the fixed-k
// pipeline at equal (resulting) bucket budgets and reports cluster
// validity indices.
//
//   $ ./build/examples/adaptive_compression [--n=20000] [--lambda=50]

#include <cstdio>
#include <iostream>

#include "cluster/metrics.h"
#include "cluster/partial_merge.h"
#include "cluster/validity.h"
#include "common/flags.h"
#include "data/generator.h"
#include "histogram/adaptive.h"
#include "histogram/histogram.h"

int main(int argc, char** argv) {
  int64_t n = 20000;
  int64_t max_k = 64;
  double lambda = 50.0;
  int64_t splits = 10;
  pmkm::FlagParser parser;
  parser.AddInt("n", &n, "points in the cell")
      .AddInt("max-k", &max_k, "ECVQ codebook ceiling per partition")
      .AddDouble("lambda", &lambda, "ECVQ rate penalty")
      .AddInt("splits", &splits, "partitions");
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok()) {
    std::cerr << st << "\n" << parser.Usage(argv[0]);
    return 1;
  }

  pmkm::Rng rng(21);
  const pmkm::Dataset cell =
      pmkm::GenerateMisrLikeCell(static_cast<size_t>(n), &rng);
  std::cout << "cell: " << cell.size() << " x " << cell.dim() << "\n\n";

  // --- Adaptive pipeline ------------------------------------------------
  pmkm::AdaptivePartialMergeConfig aconfig;
  aconfig.partial.max_k = static_cast<size_t>(max_k);
  aconfig.partial.lambda = lambda;
  aconfig.num_partitions = static_cast<size_t>(splits);
  auto adaptive = pmkm::AdaptivePartialMergeKMeans(aconfig).Run(cell);
  if (!adaptive.ok()) {
    std::cerr << adaptive.status() << "\n";
    return 1;
  }
  std::cout << "adaptive (ECVQ, lambda=" << lambda << ", max_k=" << max_k
            << "):\n  per-partition effective k:";
  for (size_t ek : adaptive->partition_effective_k) std::cout << " " << ek;
  std::cout << "\n  final k = " << adaptive->model.k() << " (from "
            << adaptive->pooled_centroids << " pooled codewords)\n";

  // --- Fixed-k pipeline at the same final k ------------------------------
  pmkm::PartialMergeConfig fconfig;
  fconfig.partial.k = adaptive->model.k();
  fconfig.partial.restarts = 5;
  fconfig.num_partitions = static_cast<size_t>(splits);
  auto fixed = pmkm::PartialMergeKMeans(fconfig).Run(cell);
  if (!fixed.ok()) {
    std::cerr << fixed.status() << "\n";
    return 1;
  }

  auto report = [&](const char* name, const pmkm::ClusteringModel& model) {
    auto hist = pmkm::MultivariateHistogram::Build(model, cell);
    PMKM_CHECK(hist.ok()) << hist.status();
    auto sil = pmkm::SilhouetteScore(model, cell);
    auto db = pmkm::DaviesBouldinIndex(model, cell);
    std::printf(
        "  %-10s k=%-3zu SSE(raw)=%-12.0f recon-MSE=%-8.3f ratio=%-7.1f "
        "silhouette=%-6.3f DB=%-6.3f\n",
        name, model.k(), pmkm::Sse(model.centroids, cell),
        hist->ReconstructionMse(cell), hist->CompressionRatio(cell.size()),
        sil.ok() ? *sil : -9.0, db.ok() ? *db : -9.0);
  };
  std::cout << "\ncomparison at equal final k:\n";
  report("adaptive", adaptive->model);
  report("fixed-k", fixed->model);

  std::cout << "\nThe adaptive pipeline discovers the bucket budget from "
               "the data (small or\nsimple partitions emit fewer "
               "codewords), which is the paper's proposed answer\nto "
               "\"which is the best choice of k depending on the "
               "partition size\".\n";
  return 0;
}
