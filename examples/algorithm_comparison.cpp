// Algorithm comparison on one cell: serial k-means, partial/merge k-means,
// BIRCH, STREAM LocalSearch, mini-batch and online k-means side by side,
// with time, memory-model and quality columns.
//
//   $ ./build/examples/algorithm_comparison [--n=30000] [--k=40]

#include <cstdio>
#include <iostream>

#include "baselines/birch.h"
#include "baselines/minibatch.h"
#include "baselines/online.h"
#include "baselines/stream_ls.h"
#include "cluster/metrics.h"
#include "cluster/partial_merge.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "data/generator.h"

namespace {

void PrintRow(const std::string& name, const std::string& memory,
              double ms, double sse, size_t k) {
  std::printf(" %-22s | %-18s | %9.1f | %12.0f | %3zu\n", name.c_str(),
              memory.c_str(), ms, sse, k);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t n = 30000;
  int64_t k = 40;
  pmkm::FlagParser parser;
  parser.AddInt("n", &n, "points in the cell").AddInt("k", &k, "clusters");
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok()) {
    std::cerr << st << "\n" << parser.Usage(argv[0]);
    return 1;
  }
  const size_t kk = static_cast<size_t>(k);

  pmkm::Rng rng(3);
  const pmkm::Dataset cell =
      pmkm::GenerateMisrLikeCell(static_cast<size_t>(n), &rng);
  std::cout << "cell: " << cell.size() << " x " << cell.dim()
            << ", k = " << kk << "\n\n";
  std::printf(" %-22s | %-18s | %9s | %12s | %3s\n", "algorithm",
              "working memory", "time(ms)", "SSE(raw)", "k");
  std::cout << "------------------------+--------------------+-----------+"
               "--------------+----\n";

  {
    pmkm::KMeansConfig config;
    config.k = kk;
    config.restarts = 5;
    const pmkm::Stopwatch watch;
    auto model = pmkm::KMeans(config).Fit(cell);
    PMKM_CHECK(model.ok()) << model.status();
    PrintRow("serial k-means", "O(N)", watch.ElapsedMillis(), model->sse,
             model->k());
  }
  {
    pmkm::PartialMergeConfig config;
    config.partial.k = kk;
    config.partial.restarts = 5;
    config.num_partitions = 10;
    const pmkm::Stopwatch watch;
    auto result = pmkm::PartialMergeKMeans(config).Run(cell);
    PMKM_CHECK(result.ok()) << result.status();
    PrintRow("partial/merge (paper)", "O(N/p)",
             watch.ElapsedMillis(),
             pmkm::Sse(result->model.centroids, cell),
             result->model.k());
  }
  {
    pmkm::BirchConfig config;
    config.k = kk;
    config.max_leaf_entries = 4 * kk;
    config.global.restarts = 5;
    pmkm::Birch birch(cell.dim(), config);
    const pmkm::Stopwatch watch;
    PMKM_CHECK_OK(birch.InsertAll(cell));
    auto model = birch.Finish();
    PMKM_CHECK(model.ok()) << model.status();
    PrintRow("BIRCH", "O(CF-tree)", watch.ElapsedMillis(),
             pmkm::Sse(model->centroids, cell), model->k());
  }
  {
    pmkm::StreamLsConfig config;
    config.k = kk;
    config.chunk_points = static_cast<size_t>(n) / 10;
    pmkm::StreamLocalSearch stream(cell.dim(), config);
    const pmkm::Stopwatch watch;
    PMKM_CHECK_OK(stream.Append(cell));
    auto model = stream.Finish();
    PMKM_CHECK(model.ok()) << model.status();
    PrintRow("STREAM LocalSearch", "O(chunk + k log N)",
             watch.ElapsedMillis(), pmkm::Sse(model->centroids, cell),
             model->k());
  }
  {
    pmkm::MiniBatchConfig config;
    config.k = kk;
    const pmkm::Stopwatch watch;
    auto model = pmkm::MiniBatchKMeans(cell, config);
    PMKM_CHECK(model.ok()) << model.status();
    PrintRow("mini-batch k-means", "O(batch + k)",
             watch.ElapsedMillis(), model->sse, model->k());
  }
  {
    pmkm::OnlineKMeansConfig config;
    config.k = kk;
    pmkm::OnlineKMeans online(cell.dim(), config);
    const pmkm::Stopwatch watch;
    PMKM_CHECK_OK(online.ObserveAll(cell));
    const double ms = watch.ElapsedMillis();
    auto model = online.Snapshot(&cell);
    PMKM_CHECK(model.ok()) << model.status();
    PrintRow("online k-means", "O(k)", ms, model->sse, model->k());
  }

  std::cout << "\nSSE(raw): total squared distance of every cell point to "
               "its nearest center\n(lower is better). Memory column: "
               "state the algorithm must keep resident.\n";
  return 0;
}
