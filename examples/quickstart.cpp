// Quickstart: cluster one grid cell with partial/merge k-means.
//
//   $ ./build/examples/quickstart [--n=20000] [--k=40] [--splits=10]
//
// Generates a MISR-like 6-attribute cell, clusters it with the paper's
// algorithm (partial k-means per chunk, weighted merge), and prints the
// quality/time summary plus the heaviest centroids.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "cluster/metrics.h"
#include "cluster/partial_merge.h"
#include "common/flags.h"
#include "data/generator.h"

int main(int argc, char** argv) {
  int64_t n = 20000;
  int64_t k = 40;
  int64_t splits = 10;
  int64_t restarts = 10;
  pmkm::FlagParser parser;
  parser.AddInt("n", &n, "points in the cell")
      .AddInt("k", &k, "clusters")
      .AddInt("splits", &splits, "memory-sized partitions")
      .AddInt("restarts", &restarts, "random seed sets per partition");
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok()) {
    std::cerr << st << "\n" << parser.Usage(argv[0]);
    return 1;
  }

  // 1. A synthetic 1°×1° cell: N points, 6 correlated radiance-like
  //    attributes (what one MISR grid bucket looks like).
  pmkm::Rng rng(7);
  const pmkm::Dataset cell =
      pmkm::GenerateMisrLikeCell(static_cast<size_t>(n), &rng);
  std::cout << "cell: " << cell.size() << " points x " << cell.dim()
            << " attributes\n";

  // 2. Configure the paper's algorithm: k-means on each of `splits`
  //    random chunks (best of R restarts), then a weighted merge seeded
  //    from the heaviest centroids.
  pmkm::PartialMergeConfig config;
  config.partial.k = static_cast<size_t>(k);
  config.partial.restarts = static_cast<size_t>(restarts);
  config.num_partitions = static_cast<size_t>(splits);

  auto result = pmkm::PartialMergeKMeans(config).Run(cell);
  if (!result.ok()) {
    std::cerr << "clustering failed: " << result.status() << "\n";
    return 1;
  }

  // 3. Inspect the model.
  const pmkm::ClusteringModel& model = result->model;
  std::cout << "k = " << model.k() << " centroids from "
            << result->pooled_centroids << " pooled partial centroids\n";
  std::cout << "partial phase: " << result->partial_seconds * 1e3
            << " ms, merge: " << result->merge_seconds * 1e3 << " ms\n";
  std::cout << "E_pm (merge objective)  = " << model.sse << "\n";
  std::cout << "SSE on raw points       = "
            << pmkm::Sse(model.centroids, cell) << "\n";
  std::cout << "mean sq. error / point  = "
            << pmkm::MsePerPoint(model.centroids, cell) << "\n";

  // 4. The five heaviest clusters (most of the cell's mass).
  std::vector<size_t> order(model.k());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return model.weights[a] > model.weights[b];
  });
  std::cout << "\nheaviest clusters:\n";
  for (size_t i = 0; i < std::min<size_t>(5, order.size()); ++i) {
    const size_t j = order[i];
    std::cout << "  #" << j << " weight=" << model.weights[j]
              << " centroid=[";
    for (size_t d = 0; d < model.dim(); ++d) {
      std::cout << (d > 0 ? ", " : "") << model.centroids(j, d);
    }
    std::cout << "]\n";
  }

  // 5. Classify a new measurement against the model.
  const pmkm::Dataset probe = pmkm::GenerateMisrLikeCell(1, &rng);
  std::cout << "\nnew point assigned to cluster "
            << model.Predict(probe.Row(0)) << "\n";
  return 0;
}
