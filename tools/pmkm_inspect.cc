// pmkm_inspect — prints a human-readable summary of pmkm binary files:
// grid buckets (.pmkb) and clustering models (.pmkm). The file type is
// sniffed from the magic, not the extension.
//
//   $ pmkm_inspect buckets/cell_10_20.pmkb models/cell_10_20.pmkm
//
// Subcommands for the observability exports of `pmkm_cluster`:
//
//   $ pmkm_inspect metrics run.metrics.json   # registry summary
//   $ pmkm_inspect trace run.trace.json       # top slowest spans
//   $ pmkm_inspect profile run.folded         # top frames by CPU samples
//
// For checkpoint directories written by `pmkm_cluster --checkpoint_dir`
// (DESIGN.md §13) — dumps the journal as JSON: every record, the recovered
// epoch, checksum/torn-tail status and the resumable position:
//
//   $ pmkm_inspect checkpoint ckpt/           # or ckpt/journal.pmkj
//
// And for the concurrency-analysis layer (DESIGN.md §12):
//
//   $ pmkm_inspect lockgraph run.lockgraph.json         # class/edge summary
//   $ pmkm_inspect lockgraph --dot run.lockgraph.json   # graphviz DOT
//
// The lock-graph JSON is written by a PMKM_SCHEDCHECK=ON binary at process
// exit when PMKM_LOCKGRAPH_OUT=<path> is set.
//
// Every failure path funnels through one renderer and exits with the
// sysexits-style code derived from its Status (StatusExitCode): 66 for a
// missing file, 74 for I/O corruption, 65 for parseable-but-wrong input,
// 64 for bad flags. With several inputs, each failure is reported and the
// exit code is the first failure's.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <numeric>
#include <sstream>

#include <filesystem>

#include "cluster/serialize.h"
#include "common/flags.h"
#include "common/status.h"
#include "data/io.h"
#include "data/manifest.h"
#include "data/stats.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "obs/stats.h"
#include "stream/checkpoint.h"

namespace {

// The one error renderer: every failure prints here and the exit code is
// always derived from the Status, never an ad-hoc `return 1`.
int Fail(const std::string& context, const pmkm::Status& st) {
  std::cerr << "pmkm_inspect: " << context << ": " << st << "\n";
  return pmkm::StatusExitCode(st);
}

pmkm::Status InspectBucket(const std::string& path) {
  auto bucket = pmkm::ReadGridBucket(path);
  if (!bucket.ok()) return bucket.status();
  const pmkm::Dataset& points = bucket->points;
  std::cout << path << ": grid bucket\n"
            << "  cell : " << bucket->cell.ToString() << "\n";
  if (points.empty()) {
    std::cout << "  empty (0 points, dim " << points.dim() << ")\n";
    return pmkm::Status::OK();
  }
  auto profile = pmkm::ProfileDataset(points);
  if (!profile.ok()) return profile.status();
  std::cout << "  " << profile->ToString();
  return pmkm::Status::OK();
}

pmkm::Status InspectModel(const std::string& path) {
  auto model = pmkm::LoadModel(path);
  if (!model.ok()) return model.status();
  const double mass =
      std::accumulate(model->weights.begin(), model->weights.end(), 0.0);
  std::cout << path << ": clustering model\n"
            << "  k          : " << model->k() << " x " << model->dim()
            << "\n"
            << "  weight     : " << mass << "\n"
            << "  E (sse)    : " << model->sse << "\n"
            << "  E / weight : " << model->mse_per_point << "\n"
            << "  iterations : " << model->iterations
            << (model->converged ? " (converged)" : " (cap hit)") << "\n"
            << "  assignments: "
            << (model->assignments.empty()
                    ? std::string("none")
                    : std::to_string(model->assignments.size()))
            << "\n";
  std::vector<size_t> order(model->k());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return model->weights[a] > model->weights[b];
  });
  std::cout << "  heaviest   :\n";
  for (size_t i = 0; i < std::min<size_t>(3, order.size()); ++i) {
    const size_t j = order[i];
    std::printf("    #%-3zu w=%-10.1f [", j, model->weights[j]);
    for (size_t d = 0; d < model->dim(); ++d) {
      std::printf("%s%.2f", d > 0 ? ", " : "", model->centroids(j, d));
    }
    std::printf("]\n");
  }
  return pmkm::Status::OK();
}

pmkm::Result<pmkm::JsonValue> LoadJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) return pmkm::Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return pmkm::JsonValue::Parse(buf.str());
}

double NumberOr(const pmkm::JsonValue* v, double fallback = 0.0) {
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

// `pmkm_inspect metrics run.metrics.json`: the registry JSON written by
// `pmkm_cluster --metrics_out`, pretty-printed per instrument kind.
pmkm::Status InspectMetrics(const std::string& path) {
  auto doc = LoadJson(path);
  if (!doc.ok()) return doc.status();
  std::cout << path << ": metrics registry\n";
  if (const pmkm::JsonValue* counters = doc->Find("counters");
      counters != nullptr && counters->is_object()) {
    std::cout << "  counters (" << counters->size() << "):\n";
    for (const auto& [name, value] : counters->members()) {
      std::printf("    %-40s %.0f\n", name.c_str(), value.AsDouble());
    }
  }
  if (const pmkm::JsonValue* gauges = doc->Find("gauges");
      gauges != nullptr && gauges->is_object()) {
    std::cout << "  gauges (" << gauges->size() << "):\n";
    for (const auto& [name, value] : gauges->members()) {
      std::printf("    %-40s %.0f (max %.0f)\n", name.c_str(),
                  NumberOr(value.Find("value")),
                  NumberOr(value.Find("max")));
    }
  }
  if (const pmkm::JsonValue* hists = doc->Find("histograms");
      hists != nullptr && hists->is_object()) {
    std::cout << "  histograms (" << hists->size() << "):\n";
    for (const auto& [name, value] : hists->members()) {
      std::printf(
          "    %-40s n=%-6.0f p50=%-9.1f p95=%-9.1f p99=%-9.1f max=%.1f\n",
          name.c_str(), NumberOr(value.Find("count")),
          NumberOr(value.Find("p50")), NumberOr(value.Find("p95")),
          NumberOr(value.Find("p99")), NumberOr(value.Find("max")));
    }
  }
  return pmkm::Status::OK();
}

// `pmkm_inspect trace run.trace.json`: the Chrome trace written by
// `pmkm_cluster --trace_out`; per-category rollup plus the slowest spans.
pmkm::Status InspectTrace(const std::string& path) {
  auto doc = LoadJson(path);
  if (!doc.ok()) return doc.status();
  const pmkm::JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return pmkm::Status::InvalidArgument(
        "no traceEvents array (not a Chrome trace?)");
  }
  struct Rollup {
    size_t count = 0;
    double total_us = 0.0;
  };
  std::map<std::string, Rollup> by_name;
  std::vector<const pmkm::JsonValue*> spans;
  for (const pmkm::JsonValue& e : events->items()) {
    if (!e.is_object()) continue;
    const pmkm::JsonValue* name = e.Find("name");
    if (name == nullptr || !name->is_string()) continue;
    Rollup& r = by_name[name->AsString()];
    ++r.count;
    r.total_us += NumberOr(e.Find("dur"));
    spans.push_back(&e);
  }
  std::cout << path << ": chrome trace, " << spans.size() << " span(s)\n";
  std::cout << "  by name:\n";
  for (const auto& [name, r] : by_name) {
    std::printf("    %-28s x%-5zu total=%s\n", name.c_str(), r.count,
                pmkm::FormatSeconds(r.total_us * 1e-6).c_str());
  }
  std::sort(spans.begin(), spans.end(),
            [](const pmkm::JsonValue* a, const pmkm::JsonValue* b) {
              return NumberOr(a->Find("dur")) > NumberOr(b->Find("dur"));
            });
  const size_t top = std::min<size_t>(10, spans.size());
  std::cout << "  slowest " << top << ":\n";
  for (size_t i = 0; i < top; ++i) {
    const pmkm::JsonValue& e = *spans[i];
    std::printf("    %-28s tid=%-3.0f %s",
                e.Find("name")->AsString().c_str(),
                NumberOr(e.Find("tid")),
                pmkm::FormatSeconds(NumberOr(e.Find("dur")) * 1e-6).c_str());
    if (const pmkm::JsonValue* args = e.Find("args");
        args != nullptr && args->is_object() && args->size() > 0) {
      std::printf("  %s", args->Dump().c_str());
    }
    std::printf("\n");
  }
  return pmkm::Status::OK();
}

// `pmkm_inspect profile run.folded`: folded-stack CPU profile written by
// `pmkm_cluster --profile_out` (or /pprofz). Top frames by self samples,
// with self/total percentages — a terminal flamegraph substitute.
pmkm::Status InspectProfile(const std::string& path, int64_t top_n) {
  std::ifstream in(path);
  if (!in) return pmkm::Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  uint64_t total = 0;
  const std::vector<pmkm::obs::ProfileFrameTotals> rows =
      pmkm::obs::AggregateFolded(buf.str(), &total);
  std::cout << path << ": folded-stack profile, " << total
            << " sample(s), " << rows.size() << " distinct frame(s)\n";
  if (total == 0) return pmkm::Status::OK();
  const size_t top = std::min<size_t>(
      top_n > 0 ? static_cast<size_t>(top_n) : rows.size(), rows.size());
  std::printf("  %-52s %8s %6s %8s %6s\n", "frame", "self", "self%",
              "total", "tot%");
  for (size_t i = 0; i < top; ++i) {
    const pmkm::obs::ProfileFrameTotals& r = rows[i];
    std::string frame = r.frame;
    if (frame.size() > 52) frame = frame.substr(0, 49) + "...";
    std::printf("  %-52s %8llu %5.1f%% %8llu %5.1f%%\n", frame.c_str(),
                static_cast<unsigned long long>(r.self),
                100.0 * static_cast<double>(r.self) /
                    static_cast<double>(total),
                static_cast<unsigned long long>(r.total),
                100.0 * static_cast<double>(r.total) /
                    static_cast<double>(total));
  }
  return pmkm::Status::OK();
}

// `pmkm_inspect lockgraph run.lockgraph.json`: the lock-order graph dumped
// by a PMKM_SCHEDCHECK build (PMKM_LOCKGRAPH_OUT). Summarizes lock classes
// and ordering edges, flags same-class nestings, and with --dot re-emits
// the graph as graphviz for visual inspection.
pmkm::Status InspectLockGraph(const std::string& path, bool dot) {
  auto doc = LoadJson(path);
  if (!doc.ok()) return doc.status();
  const pmkm::JsonValue* classes = doc->Find("classes");
  const pmkm::JsonValue* edges = doc->Find("edges");
  if (classes == nullptr || !classes->is_array() || edges == nullptr ||
      !edges->is_array()) {
    return pmkm::Status::InvalidArgument(
        "no classes/edges arrays (not a lock-graph dump?)");
  }

  auto text = [](const pmkm::JsonValue& v, const char* key) {
    const pmkm::JsonValue* f = v.Find(key);
    return (f != nullptr && f->is_string()) ? f->AsString()
                                            : std::string("?");
  };

  if (dot) {
    std::cout << "digraph lockgraph {\n  rankdir=LR;\n  node [shape=box];\n";
    for (const pmkm::JsonValue& c : classes->items()) {
      std::cout << "  n" << NumberOr(c.Find("id")) << " [label=\""
                << text(c, "site") << "\\n(" << NumberOr(c.Find("instances"))
                << " live)\"];\n";
    }
    for (const pmkm::JsonValue& e : edges->items()) {
      const bool same = e.Find("same_class") != nullptr &&
                        e.Find("same_class")->is_bool() &&
                        e.Find("same_class")->AsBool();
      std::cout << "  n" << NumberOr(e.Find("from")) << " -> n"
                << NumberOr(e.Find("to")) << " [label=\"x"
                << NumberOr(e.Find("count")) << "\""
                << (same ? ", style=dashed" : "") << "];\n";
    }
    std::cout << "}\n";
    return pmkm::Status::OK();
  }

  std::cout << path << ": lock-order graph, " << classes->size()
            << " class(es), " << edges->size() << " edge(s)\n";
  std::cout << "  classes:\n";
  for (const pmkm::JsonValue& c : classes->items()) {
    std::printf("    #%-3.0f %-44s %.0f live instance(s)\n",
                NumberOr(c.Find("id")), text(c, "site").c_str(),
                NumberOr(c.Find("instances")));
  }
  std::cout << "  ordering edges (held -> acquired):\n";
  for (const pmkm::JsonValue& e : edges->items()) {
    const bool same = e.Find("same_class") != nullptr &&
                      e.Find("same_class")->is_bool() &&
                      e.Find("same_class")->AsBool();
    std::printf("    #%-3.0f -> #%-3.0f x%-6.0f %s -> %s%s\n",
                NumberOr(e.Find("from")), NumberOr(e.Find("to")),
                NumberOr(e.Find("count")), text(e, "from_site").c_str(),
                text(e, "to_site").c_str(),
                same ? "   [same class: explorer territory]" : "");
  }
  return pmkm::Status::OK();
}

// `pmkm_inspect checkpoint <dir|journal.pmkj>`: dumps a run journal as
// JSON — per-record listing, recovered epoch, checksum/torn-tail status,
// and the position a resumed run would continue from.
pmkm::Status InspectCheckpoint(const std::string& arg) {
  std::error_code ec;
  const std::string path = std::filesystem::is_directory(arg, ec)
                               ? pmkm::CheckpointJournalPath(arg)
                               : arg;
  pmkm::JsonValue doc = pmkm::JsonValue::Object();
  doc.Set("journal", path);
  if (!std::filesystem::exists(path, ec)) {
    doc.Set("found", false);
    std::cout << doc.Dump(2) << "\n";
    return pmkm::Status::OK();
  }
  auto recovery = pmkm::RecoverJournal(path);
  if (!recovery.ok()) return recovery.status();
  const pmkm::CheckpointState state =
      pmkm::ReplayCheckpointJournal(*recovery);

  doc.Set("found", true);
  doc.Set("epoch", recovery->epoch);
  doc.Set("valid_bytes", recovery->valid_bytes);
  doc.Set("torn_tail", recovery->torn_tail);
  if (recovery->torn_tail) doc.Set("tail_error", recovery->tail_error);
  doc.Set("run_complete", state.run_complete);
  if (state.fingerprint_known) {
    doc.Set("config_fingerprint",
            std::to_string(state.config_fingerprint));
  }
  doc.Set("records_dropped", state.records_dropped);

  pmkm::JsonValue records = pmkm::JsonValue::Array();
  for (const pmkm::JournalRecord& r : recovery->records) {
    pmkm::JsonValue rec = pmkm::JsonValue::Object();
    rec.Set("seq", r.seq);
    const char* type_name = "unknown";
    switch (static_cast<pmkm::CheckpointRecordType>(r.type)) {
      case pmkm::CheckpointRecordType::kRunBegin:
        type_name = "run_begin";
        break;
      case pmkm::CheckpointRecordType::kCellComplete:
        type_name = "cell_complete";
        break;
      case pmkm::CheckpointRecordType::kPartialState:
        type_name = "partial_state";
        break;
      case pmkm::CheckpointRecordType::kRunEnd:
        type_name = "run_end";
        break;
    }
    rec.Set("type", type_name);
    rec.Set("payload_bytes", r.payload.size());
    if (auto cell = pmkm::DecodeCellComplete(r.payload);
        r.type ==
            static_cast<uint32_t>(
                pmkm::CheckpointRecordType::kCellComplete) &&
        cell.ok()) {
      rec.Set("cell", cell->cell.ToString());
      rec.Set("k", cell->model.k());
      rec.Set("input_points", cell->input_points);
      rec.Set("sse", cell->model.sse);
    }
    records.Append(std::move(rec));
  }
  doc.Set("records", std::move(records));

  pmkm::JsonValue completed = pmkm::JsonValue::Array();
  for (const auto& [cell, clustering] : state.completed) {
    completed.Append(cell.ToString());
  }
  pmkm::JsonValue resume = pmkm::JsonValue::Object();
  resume.Set("completed_cells", std::move(completed));
  resume.Set("partial_cells", state.partials.size());
  resume.Set("next_seq", recovery->epoch + 1);
  resume.Set("resumable", !state.run_complete);
  doc.Set("resume", std::move(resume));

  std::cout << doc.Dump(2) << "\n";
  return pmkm::Status::OK();
}

// Magic-sniffed dispatch for plain file arguments. The Status category
// picks the exit code (StatusExitCode): a missing file is NotFound (66),
// an unreadable or short one IOError (74), and an unrecognized format
// OutOfRange (65, EX_DATAERR — the file exists but is not ours).
pmkm::Status InspectFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return pmkm::Status::NotFound("no such file");
  }
  std::ifstream in(path, std::ios::binary);
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) return pmkm::Status::IOError("unreadable or too short");
  if (magic == 0x424b4d50) return InspectBucket(path);  // "PMKB"
  if (magic == 0x4d4b4d50) return InspectModel(path);   // "PMKM"
  return pmkm::Status::OutOfRange("unknown file magic");
}

}  // namespace

int main(int argc, char** argv) {
  pmkm::FlagParser parser;
  bool dot = false;
  int64_t top_n = 20;
  pmkm::ObsFlags obs_flags;
  parser
      .SetDescription(
          "pmkm_inspect: summarize pmkm binary files (buckets, models) "
          "and observability exports (metrics, traces, profiles, lock "
          "graphs, checkpoints).")
      .SetPositionalUsage(
          "file.pmkb|file.pmkm ...  |  "
          "metrics|trace|profile|lockgraph|checkpoint file ...")
      .AddBool("dot", &dot,
               "lockgraph: emit graphviz DOT instead of a summary")
      .AddInt("top", &top_n,
              "profile: number of frames to print (0 = all)");
  obs_flags.Register(&parser);
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok()) {
    std::cerr << parser.Usage(argv[0]);
    return Fail("flags", st);
  }
  if (const pmkm::Status os = obs_flags.Apply(); !os.ok()) {
    return Fail("flags", os);
  }
  if (parser.positional().empty()) {
    std::cerr << parser.Usage(argv[0]);
    return Fail("usage",
                pmkm::Status::InvalidArgument("no input files given"));
  }

  // With several inputs every failure is rendered; the process exit code
  // is the first failure's Status-derived code.
  int rc = 0;
  auto account = [&rc](const std::string& context, const pmkm::Status& s) {
    if (s.ok()) return;
    const int code = Fail(context, s);
    if (rc == 0) rc = code;
  };

  const std::vector<std::string> paths = parser.positional();
  const std::string& sub = paths.front();
  if (sub == "metrics" || sub == "trace" || sub == "lockgraph" ||
      sub == "checkpoint" || sub == "profile") {
    if (paths.size() < 2) {
      return Fail(sub, pmkm::Status::InvalidArgument(
                           "needs at least one file argument"));
    }
    for (size_t i = 1; i < paths.size(); ++i) {
      account(paths[i],
              sub == "metrics"      ? InspectMetrics(paths[i])
              : sub == "lockgraph"  ? InspectLockGraph(paths[i], dot)
              : sub == "checkpoint" ? InspectCheckpoint(paths[i])
              : sub == "profile"    ? InspectProfile(paths[i], top_n)
                                    : InspectTrace(paths[i]));
    }
    return rc;
  }
  for (const std::string& path : paths) {
    account(path, InspectFile(path));
  }
  return rc;
}
