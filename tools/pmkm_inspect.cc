// pmkm_inspect — prints a human-readable summary of pmkm binary files:
// grid buckets (.pmkb) and clustering models (.pmkm). The file type is
// sniffed from the magic, not the extension.
//
//   $ pmkm_inspect buckets/cell_10_20.pmkb models/cell_10_20.pmkm

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <numeric>

#include "cluster/serialize.h"
#include "common/flags.h"
#include "data/io.h"
#include "data/stats.h"

namespace {

int InspectBucket(const std::string& path) {
  auto bucket = pmkm::ReadGridBucket(path);
  if (!bucket.ok()) {
    std::cerr << bucket.status() << "\n";
    return 1;
  }
  const pmkm::Dataset& points = bucket->points;
  std::cout << path << ": grid bucket\n"
            << "  cell : " << bucket->cell.ToString() << "\n";
  if (points.empty()) {
    std::cout << "  empty (0 points, dim " << points.dim() << ")\n";
    return 0;
  }
  auto profile = pmkm::ProfileDataset(points);
  if (!profile.ok()) {
    std::cerr << profile.status() << "\n";
    return 1;
  }
  std::cout << "  " << profile->ToString();
  return 0;
}

int InspectModel(const std::string& path) {
  auto model = pmkm::LoadModel(path);
  if (!model.ok()) {
    std::cerr << model.status() << "\n";
    return 1;
  }
  const double mass =
      std::accumulate(model->weights.begin(), model->weights.end(), 0.0);
  std::cout << path << ": clustering model\n"
            << "  k          : " << model->k() << " x " << model->dim()
            << "\n"
            << "  weight     : " << mass << "\n"
            << "  E (sse)    : " << model->sse << "\n"
            << "  E / weight : " << model->mse_per_point << "\n"
            << "  iterations : " << model->iterations
            << (model->converged ? " (converged)" : " (cap hit)") << "\n"
            << "  assignments: "
            << (model->assignments.empty()
                    ? std::string("none")
                    : std::to_string(model->assignments.size()))
            << "\n";
  std::vector<size_t> order(model->k());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return model->weights[a] > model->weights[b];
  });
  std::cout << "  heaviest   :\n";
  for (size_t i = 0; i < std::min<size_t>(3, order.size()); ++i) {
    const size_t j = order[i];
    std::printf("    #%-3zu w=%-10.1f [", j, model->weights[j]);
    for (size_t d = 0; d < model->dim(); ++d) {
      std::printf("%s%.2f", d > 0 ? ", " : "", model->centroids(j, d));
    }
    std::printf("]\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  pmkm::FlagParser parser;
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok() || parser.positional().empty()) {
    std::cerr << "usage: " << argv[0] << " file.pmkb|file.pmkm ...\n";
    return 1;
  }
  int rc = 0;
  for (const std::string& path : parser.positional()) {
    std::ifstream in(path, std::ios::binary);
    uint32_t magic = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (!in) {
      std::cerr << path << ": unreadable or too short\n";
      rc = 1;
      continue;
    }
    if (magic == 0x424b4d50) {  // "PMKB"
      rc |= InspectBucket(path);
    } else if (magic == 0x4d4b4d50) {  // "PMKM"
      rc |= InspectModel(path);
    } else {
      std::cerr << path << ": unknown file magic\n";
      rc = 1;
    }
  }
  return rc;
}
