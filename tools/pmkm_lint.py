#!/usr/bin/env python3
"""pmkm_lint: fast project-invariant linter for the pmkm tree.

Enforces the invariants that make the partial/merge k-means engine
trustworthy at scale but that no compiler checks (DESIGN.md §11):

  raw-random    All randomness flows through common/rng.h (seeded,
                reproducible). `rand()`/`srand()`/`random()`, the
                drand48 family, `std::random_device`, raw `std::mt19937`
                engines, `std::default_random_engine`, and
                `std::random_shuffle` are banned everywhere else: one
                unseeded draw makes a TB-scale run unreproducible (and
                pmkm_detcheck's nondet-source rule proves the same
                property path-sensitively on output paths).
  naked-new     Library code (src/) never uses naked new/delete; ownership
                is expressed with containers and smart pointers so leaks
                are structurally impossible.
  stdio         Library code (src/) never writes to std::cout/std::cerr or
                printf/fprintf; it uses PMKM_LOG so output is leveled,
                rate-limitable, run-id tagged, and capturable (JSON mode).
                Structurally exempt: common/logging.{h,cc} (the sink that
                writes the final bytes) and common/schedcheck/ (reports
                from inside the scheduler, below the logging layer in the
                link graph). CLI surface (tools/, bench/, examples/) is
                exempt.
  sleep         `std::this_thread::sleep_for` in library code hides
                latency bugs and breaks determinism; only the retry
                backoff and fault-injection machinery may sleep.
  header-guard  Every header uses an #ifndef guard named
                PMKM_<PATH>_H_ (path relative to src/, or to the repo root
                outside src/); `#pragma once` is forbidden for
                consistency.
  fault-site    PMKM_FAULT_POINT sites are string literals named
                `component.action` (lowercase dotted), so fault specs in
                PMKM_FAULTS/--faults stay greppable and collision-free.
  raw-sync      Library code (src/) synchronizes through the annotated
                wrappers in common/annotations.h (Mutex, MutexLock,
                CondVar), never raw std::mutex/std::condition_variable/
                std::lock_guard &c. — the wrappers carry the thread-safety
                annotations AND the schedcheck hooks, so a raw primitive
                is invisible to both the compile-time analysis and the
                deterministic schedule explorer. The wrappers' own
                implementation (annotations.h, common/schedcheck/) is
                exempt.
  persist       Library code (src/) persists binary state only through the
                sanctioned crash-safe paths (data/io.{h,cc} bucket commit,
                data/manifest.{h,cc} AtomicWriteFile/JournalWriter).
                Direct `std::filesystem::rename`/`::rename` or a binary
                `std::ofstream` anywhere else can tear under power loss —
                exactly the corruption the checkpoint layer exists to
                survive. Text/report writers (CSV, traces, JSON exports)
                open without std::ios::binary and are not flagged.
  raw-signal    Library code (src/) never installs signal handlers with
                raw `signal()`/`sigaction()`: a handler constrains every
                line it can interrupt to the async-signal-safe subset,
                which pmkm_ctxcheck can only verify for the two sanctioned
                installers (obs/profiler.cc SIGPROF, serve/daemon.cc).
                Process-lifecycle wiring belongs in the CLI surface
                (tools/), outside the library.
  direct-run    The retired free-function entry points
                RunPartialMergeStream / RunPartialMergeStreamInMemory must
                not reappear: every pipeline run goes through
                PipelineBuilder (stream/engine.h) so cancel tokens,
                observability sinks, resource budgets and checkpointing
                are wired in one place. Likewise, constructing the raw
                stream Executor outside the engine bypasses supervision;
                only stream/engine.cc and tests may build one directly.

Suppression: append `// pmkm-lint: allow(<rule>)` to the offending line
(or the line above) together with a comment justifying the exception.

Usage:
  tools/pmkm_lint.py [--root DIR] [--list-rules] [files...]

With no file arguments, lints the standard project surface under --root
(default: the repo containing this script). Registered as the `lint.pmkm`
ctest.

Exit codes follow the sysexits contract shared with pmkm_inspect and
pmkm_ctxcheck:
  0   clean
  64  usage error
  65  findings reported
  74  I/O error reading an input file
"""

import argparse
import os
import re
import sys

EX_OK, EX_USAGE, EX_DATAERR, EX_IOERR = 0, 64, 65, 74

# (rule id, human description) — keep in sync with the docstring.
RULES = {
    "raw-random": "randomness outside common/rng.h",
    "naked-new": "naked new/delete in library code",
    "stdio": "std::cout/std::cerr/printf in library code",
    "sleep": "sleep_for outside retry/fault code",
    "header-guard": "header guard missing or misnamed",
    "fault-site": "malformed PMKM_FAULT_POINT site name",
    "raw-sync": "raw std sync primitive outside the annotated wrappers",
    "raw-signal": "signal()/sigaction() outside the sanctioned installers",
    "persist": "binary persistence outside the crash-safe commit paths",
    "direct-run": "pipeline run outside PipelineBuilder (retired entry "
                  "points / raw Executor)",
}

# Directories scanned when no explicit file list is given.
DEFAULT_DIRS = ("src", "tools", "bench", "tests", "examples", "fuzz")
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")

SUPPRESS_RE = re.compile(r"pmkm-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

RNG_RE = re.compile(
    r"\b(?:rand|srand|random|srandom|rand_r|[demn]rand48|[jln]rand48|"
    r"srand48|seed48|lcong48)\s*\(|std::random_device|std::mt19937|"
    r"std::default_random_engine|std::minstd_rand|std::random_shuffle")
NEW_RE = re.compile(r"(?<![\w.:])new\b(?!\s*\()")
DELETE_RE = re.compile(r"(?<![\w.:])delete(?:\s*\[\s*\])?\s+[\w*(]")
STDIO_RE = re.compile(r"std::c(?:out|err)\b|(?<![\w.:])f?printf\s*\(")
SLEEP_RE = re.compile(
    r"std::this_thread::sleep_for|(?<![\w.:])(?:usleep|nanosleep)\s*\(")
RAW_SYNC_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")
# Calls only: `struct sigaction act;` declarations do not match.
RAW_SIGNAL_RE = re.compile(
    r"(?<![\w.:])(?:signal|sigaction|bsd_signal|sysv_signal)\s*\(")
FAULT_POINT_RE = re.compile(r"PMKM_FAULT_POINT\s*\(\s*([^)]*)\)")
FAULT_SITE_RE = re.compile(r'^"[a-z0-9_]+(?:\.[a-z0-9_]+)+"$')
RENAME_RE = re.compile(
    r"std::filesystem::rename\b|(?<![\w.:])::rename\s*\(|"
    r"(?<![\w.:])std::rename\s*\(")
BINARY_OFSTREAM_RE = re.compile(
    r"std::ofstream\b[^;\n]*std::ios(?:_base)?::binary")
DIRECT_RUN_RE = re.compile(r"\bRunPartialMergeStream(?:InMemory)?\b")
RAW_EXECUTOR_RE = re.compile(r"\bExecutor\s+\w+\s*[({;]|\bExecutor\s*\(")


def strip_comments_and_strings(text):
    """Returns `text` with comments and string/char literals blanked out
    (replaced by spaces), preserving line structure so line numbers hold.
    String literals become `""` so literal-shaped regexes still anchor."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            elif c == "\n":  # unterminated; recover
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            elif c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def expected_guard(relpath):
    """PMKM_<PATH>_H_ with the path relative to src/ when inside it."""
    path = relpath
    if path.startswith("src" + os.sep):
        path = path[len("src" + os.sep):]
    stem = path[:-2] if path.endswith(".h") else path
    return "PMKM_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def suppressions_for(raw_lines, lineno):
    """Rules allowed on `lineno` (1-based) by a trailing or preceding
    `// pmkm-lint: allow(rule[, rule...])` comment."""
    allowed = set()
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(raw_lines):
            m = SUPPRESS_RE.search(raw_lines[candidate - 1])
            if m:
                allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def in_dir(relpath, *dirs):
    return any(
        relpath == d or relpath.startswith(d + os.sep) for d in dirs)


def lint_file(root, relpath):
    path = os.path.join(root, relpath)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as err:
        return [Finding(relpath, 0, "io", f"cannot read: {err}")]

    findings = []
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    fname = os.path.basename(relpath)

    def check(lineno, rule, message):
        if rule not in suppressions_for(raw_lines, lineno):
            findings.append(Finding(relpath, lineno, rule, message))

    is_src = in_dir(relpath, "src")
    # The annotated wrappers and the schedcheck layer *implement* the sync
    # abstraction; everything else in src/ must go through them.
    raw_sync_exempt = (
        relpath == os.path.join("src", "common", "annotations.h")
        or in_dir(relpath, os.path.join("src", "common", "schedcheck")))
    rng_exempt = relpath == os.path.join("src", "common", "rng.h")
    # The logging sink writes the final bytes to stderr — it *implements*
    # the logging abstraction. Schedcheck reports from inside the
    # deterministic scheduler and sits below logging in the link graph, so
    # it cannot call PMKM_LOG without a dependency cycle.
    stdio_exempt = (
        relpath in (os.path.join("src", "common", "logging.h"),
                    os.path.join("src", "common", "logging.cc"))
        or in_dir(relpath, os.path.join("src", "common", "schedcheck")))
    sleep_exempt = fname in ("retry.cc", "retry.h", "fault.cc", "fault.h")
    # The two sanctioned handler installers: the SIGPROF profiler and the
    # serve daemon. Their handlers/closures are verified by pmkm_ctxcheck.
    signal_exempt = relpath in (
        os.path.join("src", "obs", "profiler.cc"),
        os.path.join("src", "serve", "daemon.cc"))
    fault_def_file = relpath == os.path.join("src", "common", "fault.h")
    # The two modules that *implement* the crash-safe commit protocol.
    persist_exempt = relpath in (
        os.path.join("src", "data", "io.h"),
        os.path.join("src", "data", "io.cc"),
        os.path.join("src", "data", "manifest.h"),
        os.path.join("src", "data", "manifest.cc"))
    # The engine owns the Executor; operator.{h,cc} declare/implement it;
    # tests may drive it directly to exercise supervision paths.
    raw_exec_exempt = (
        in_dir(relpath, "tests")
        or relpath in (os.path.join("src", "stream", "engine.cc"),
                       os.path.join("src", "stream", "operator.h"),
                       os.path.join("src", "stream", "operator.cc")))

    for lineno, line in enumerate(code_lines, start=1):
        if not rng_exempt and RNG_RE.search(line):
            check(lineno, "raw-random",
                  "unseeded randomness; draw from common/rng.h Rng instead")
        if is_src:
            if NEW_RE.search(line):
                check(lineno, "naked-new",
                      "naked new; use std::make_unique/containers")
            if DELETE_RE.search(line):
                check(lineno, "naked-new",
                      "naked delete; use RAII ownership")
            if not stdio_exempt and STDIO_RE.search(line):
                check(lineno, "stdio",
                      "direct stdout/stderr in library code; use PMKM_LOG")
            if not sleep_exempt and SLEEP_RE.search(line):
                check(lineno, "sleep",
                      "sleep in library code; only retry/fault code may "
                      "sleep")
            if not raw_sync_exempt and RAW_SYNC_RE.search(line):
                check(lineno, "raw-sync",
                      "raw std sync primitive; use the annotated Mutex/"
                      "MutexLock/CondVar from common/annotations.h")
            if not signal_exempt and RAW_SIGNAL_RE.search(line):
                check(lineno, "raw-signal",
                      "signal handler installed outside the sanctioned "
                      "installers (obs/profiler.cc, serve/daemon.cc); "
                      "wire process signals in tools/ instead")
            if not persist_exempt:
                if RENAME_RE.search(line):
                    check(lineno, "persist",
                          "direct rename; publish through data/manifest.h "
                          "AtomicWriteFile or the bucket commit path")
                if BINARY_OFSTREAM_RE.search(line):
                    check(lineno, "persist",
                          "binary ofstream outside the crash-safe commit "
                          "paths; use AtomicWriteFile/JournalWriter")
        if DIRECT_RUN_RE.search(line):
            check(lineno, "direct-run",
                  "retired RunPartialMergeStream* entry point; run "
                  "through PipelineBuilder (stream/engine.h)")
        if not raw_exec_exempt and RAW_EXECUTOR_RE.search(line):
            check(lineno, "direct-run",
                  "raw Executor outside the engine; run pipelines "
                  "through PipelineBuilder (stream/engine.h)")
        if not fault_def_file:
            for m in FAULT_POINT_RE.finditer(line):
                # Re-read the argument from the raw line: literals were
                # blanked in the stripped text.
                raw_match = FAULT_POINT_RE.search(raw_lines[lineno - 1])
                arg = (raw_match.group(1) if raw_match else m.group(1)).strip()
                if not FAULT_SITE_RE.match(arg):
                    check(lineno, "fault-site",
                          f"site must be a literal \"component.action\" "
                          f"(lowercase dotted), got: {arg or '<empty>'}")

    if fname.endswith(".h"):
        findings.extend(
            lint_header_guard(relpath, raw_lines, code_lines))

    return findings


def lint_header_guard(relpath, raw_lines, code_lines):
    findings = []
    guard = expected_guard(relpath)
    ifndef = None
    define = None
    for lineno, line in enumerate(code_lines, start=1):
        stripped = line.strip()
        if stripped.startswith("#pragma once"):
            if "header-guard" not in suppressions_for(raw_lines, lineno):
                findings.append(Finding(
                    relpath, lineno, "header-guard",
                    f"#pragma once; use #ifndef {guard} for consistency"))
            return findings
        if ifndef is None:
            m = re.match(r"#\s*ifndef\s+(\w+)", stripped)
            if m:
                ifndef = (lineno, m.group(1))
                continue
        elif define is None:
            m = re.match(r"#\s*define\s+(\w+)", stripped)
            if m:
                define = (lineno, m.group(1))
                break
    if ifndef is None or define is None:
        findings.append(Finding(
            relpath, 1, "header-guard",
            f"missing include guard; expected #ifndef {guard}"))
        return findings
    if ifndef[1] != guard:
        if "header-guard" not in suppressions_for(raw_lines, ifndef[0]):
            findings.append(Finding(
                relpath, ifndef[0], "header-guard",
                f"guard '{ifndef[1]}' should be '{guard}'"))
    elif define[1] != guard:
        findings.append(Finding(
            relpath, define[0], "header-guard",
            f"#define '{define[1]}' does not match guard '{guard}'"))
    return findings


def collect_files(root, args_files):
    if args_files:
        for f in args_files:
            yield os.path.relpath(os.path.abspath(f), root)
        return
    for d in DEFAULT_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(
                n for n in dirnames if not n.startswith("."))
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.relpath(
                        os.path.join(dirpath, name), root)


class SysexitsParser(argparse.ArgumentParser):
    """argparse exits 2 on bad usage; the pmkm tools contract is 64."""

    def error(self, message):
        self.print_usage(sys.stderr)
        self.exit(EX_USAGE, f"{self.prog}: error: {message}\n")


def main(argv=None):
    parser = SysexitsParser(
        prog="pmkm_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--root", default=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (default: project)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule:14} {description}")
        return EX_OK

    root = os.path.abspath(args.root)
    findings = []
    checked = 0
    for relpath in collect_files(root, args.files):
        checked += 1
        findings.extend(lint_file(root, relpath))

    for finding in findings:
        print(finding)
    status = "FAILED" if findings else "OK"
    print(f"pmkm_lint: {status} — {checked} files checked, "
          f"{len(findings)} finding(s)")
    if any(f.rule == "io" for f in findings):
        return EX_IOERR
    return EX_DATAERR if findings else EX_OK


if __name__ == "__main__":
    sys.exit(main())
