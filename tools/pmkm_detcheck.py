#!/usr/bin/env python3
"""pmkm_detcheck: whole-program determinism analyzer (DESIGN.md §17).

Verifies that every byte on a model-output path is a pure function of
the input data and the algorithm config — the static guarantee behind
the repo's bitwise-model contracts: cross-ISA kernel parity (PR 3),
bitwise-identical resume (PR 6), byte-identical local-vs-remote models
(PR 8), and the content-addressed cache keys of ROADMAP item 1 (a
nondeterministic byte poisons a cache key or cross-node merge forever).

Roots are annotated PMKM_DETERMINISTIC in src/common/annotations.h:
model serialization (SaveModel), the checkpoint kPartialState/
cell-complete encoders, the serve protocol encoders, and the kernel
AssignBlock/AccumulateBlock hot path. Four rules are checked over the
shared call graph (tools/pmkm_callgraph.py, the engine pmkm_ctxcheck
also uses):

  unordered-iter  D1: no iteration over a hash-ordered container
                  (std::unordered_map/set and friends) on a path feeding
                  output bytes — iteration order depends on hashing,
                  insertion history, and libstdc++ version. Ordered
                  std::map/set iteration is fine.
  nondet-source   D2: no wall-clock or random source reachable from a
                  deterministic root: time()/gettimeofday()/
                  system_clock::now()/high_resolution_clock::now(),
                  rand()/drand48()/std::random_device/std::mt19937
                  declarations — outside the sanctioned seed plumbing in
                  common/rng.h (which derives streams from the run
                  seed). steady_clock is NOT flagged: it is monotonic,
                  feeds only latency metrics, and never lands in output
                  bytes (the checkpoint fsync timer is the canonical
                  example).
  ptr-order       D3: no pointer-valued ordering or hashing flowing into
                  output: iterating a container keyed on pointers
                  (even an ordered std::map<T*, ...> — ASLR reorders it
                  across processes), hashing pointers, or
                  reinterpret_cast of a pointer to uintptr_t on an
                  output path.
  fp-flags        D4: compile-flag audit, straight from
                  compile_commands.json, of every TU that defines a
                  function reachable from a deterministic root:
                  -ffp-contract=off must be present (otherwise FMA
                  contraction makes results vary by compiler/arch — the
                  kernels already pin it; this extends the pin to every
                  TU that computes output bytes), and the value-unsafe
                  flags -ffast-math/-funsafe-math-optimizations/-Ofast
                  must be absent.

Witness chains, the ratcheted baseline (scripts/detcheck_baseline.txt,
may only shrink), `// pmkm-detcheck: allow(<rule>)` site suppression
(anywhere on the chain), and the sysexits contract are all inherited
from the shared engine — see tools/pmkm_ctxcheck.py for the long-form
description. Run tools/pmkm_callgraph.py directly to run both analyzers
over a single compdb read and source parse (the CI gate).

Exit codes: 0 clean/baselined, 64 usage, 65 findings/stale baseline/
stale compdb, 66 missing input, 74 I/O error.

Usage:
  tools/pmkm_detcheck.py [--root DIR] [--compdb PATH] [--files F...]
                         [--baseline PATH] [--update-baseline]
                         [--virtual {cha,conservative}]
                         [--dump-callgraph PATH] [--list-rules] [--stats]
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import pmkm_callgraph as cg  # noqa: E402

RULES = {
    "unordered-iter": "hash-ordered container iteration reachable from a "
                      "PMKM_DETERMINISTIC root",
    "nondet-source": "wall-clock/random source reachable from a "
                     "PMKM_DETERMINISTIC root",
    "ptr-order": "pointer-valued ordering/hashing reachable from a "
                 "PMKM_DETERMINISTIC root",
    "fp-flags": "deterministic TU compiled with value-unsafe FP flags "
                "or without -ffp-contract=off",
}

# D2 knowledge base. Raw PRNG calls: the C/POSIX families whose state is
# process-global or seeded from who-knows-where. std::shuffle with a
# seeded engine is fine; random_shuffle (implementation-defined source)
# is not.
RANDOM_CALLS = {
    "rand", "srand", "random", "srandom", "rand_r",
    "drand48", "erand48", "lrand48", "nrand48", "mrand48", "jrand48",
    "srand48", "seed48", "lcong48", "random_shuffle",
}
# Wall-clock reads. CLOCK_MONOTONIC users go through steady_clock (not
# listed); clock_gettime is listed because its common uses here would be
# CLOCK_REALTIME — an allow with justification covers monotonic uses.
TIME_CALLS = {
    "time", "gettimeofday", "clock_gettime", "timespec_get",
    "localtime", "localtime_r", "gmtime", "gmtime_r", "mktime",
    "strftime", "ctime", "asctime",
}
# Clock types whose now() is wall-adjacent. steady_clock is deliberately
# absent: monotonic, metrics-only (see module docstring).
WALL_CLOCKS = ("system_clock", "high_resolution_clock")

# The sanctioned seed plumbing: deterministic per-(seed, stream) engines
# derived from the run config. Ops inside it are exempt from D2 — it is
# the one place randomness is allowed to originate.
SANCTIONED_RNG_FILES = (os.path.join("src", "common", "rng.h"),)


def container_flags_for(prog, fn, expr):
    """Flags dict for a range-for expression, resolving through locals/
    params, fields of the enclosing class (walking up bases), and a
    leading object part (e.g. `state.partials` → field type of `state`,
    then that class's `partials` field). Returns None when the container
    kind is unknown or order-safe."""
    expr = expr.rstrip("()")
    parts = [p for p in re.split(r"\.|->", expr) if p]
    if not parts:
        return None
    head = parts[0].lstrip("*(").rstrip(")")
    if not re.match(r"^[A-Za-z_]\w*$", head):
        return None

    def field_flags(cls_qname, member):
        seen = set()
        stack = [cls_qname]
        while stack:
            cq = stack.pop()
            if cq in seen or cq not in prog.classes:
                continue
            seen.add(cq)
            got = prog.field_containers.get((cq, member))
            if got:
                return got
            for b in prog.classes[cq].bases:
                stack.extend(prog.class_by_name.get(b, ()))
        return None

    def field_type(cls_qname, member):
        seen = set()
        stack = [cls_qname]
        while stack:
            cq = stack.pop()
            if cq in seen or cq not in prog.classes:
                continue
            seen.add(cq)
            got = prog.field_types.get((cq, member))
            if got:
                return got
            for b in prog.classes[cq].bases:
                stack.extend(prog.class_by_name.get(b, ()))
        return None

    if len(parts) == 1:
        flags = prog.local_containers.get(fn.qname, {}).get(head)
        if flags:
            return flags
        if fn.cls:
            return field_flags(fn.cls, head)
        return None

    # Member chain: resolve the head's type, then walk member types.
    cur_type = prog.local_types.get(fn.qname, {}).get(head)
    if cur_type is None and fn.cls:
        cur_type = field_type(fn.cls, head)
    for member in parts[1:]:
        member = member.lstrip("*(").rstrip(")")
        if cur_type is None:
            return None
        cands = prog.class_by_name.get(cur_type, [])
        if not cands:
            return None
        if member == parts[-1]:
            for cq in cands:
                flags = field_flags(cq, member)
                if flags:
                    return flags
        nxt = None
        for cq in cands:
            nxt = field_type(cq, member)
            if nxt:
                break
        cur_type = nxt
    return None


def check_output_paths(prog, findings):
    """D1 (unordered-iter), D2 (nondet-source), D3 (ptr-order): one BFS
    per deterministic root over the shared graph."""
    for root in cg.expand_roots(prog, "deterministic"):
        def visit(fn, op, chain):
            if any(fn.file.endswith(f) for f in SANCTIONED_RNG_FILES):
                return False
            kind = op["kind"]
            hits = []   # (rule, message)
            if kind == "iter":
                flags = container_flags_for(prog, fn, op["name"])
                if flags:
                    if flags["unordered"]:
                        hits.append((
                            "unordered-iter",
                            f"iterates hash-ordered "
                            f"{flags['container']} `{op['name']}` on an "
                            f"output path (iteration order is not "
                            f"deterministic)"))
                    if flags["ptr_key"]:
                        hits.append((
                            "ptr-order",
                            f"iterates pointer-keyed "
                            f"{flags['container']} `{op['name']}` on an "
                            f"output path (ASLR reorders it across "
                            f"processes)"))
            elif kind == "typedecl":
                hits.append((
                    "nondet-source",
                    f"declares `{op['name']}` on an output path (random "
                    f"engine outside common/rng.h seed plumbing)"))
            elif kind == "ptrcast":
                hits.append((
                    "ptr-order",
                    "casts a pointer to uintptr_t on an output path "
                    "(address-derived value)"))
            elif kind == "ptrhash":
                hits.append((
                    "ptr-order",
                    "hashes a pointer type on an output path"))
            elif kind == "call" and not op.get("project"):
                name = op["name"]
                tinfo = op["targets"][0] if op["targets"] else {}
                qual = tinfo.get("qual", "")
                if name in RANDOM_CALLS:
                    hits.append((
                        "nondet-source",
                        f"calls `{name}` on an output path (process-"
                        f"global randomness; use common/rng.h)"))
                elif name in TIME_CALLS:
                    hits.append((
                        "nondet-source",
                        f"calls `{name}` on an output path (wall clock)"))
                elif name == "now" and qual.endswith(WALL_CLOCKS):
                    hits.append((
                        "nondet-source",
                        f"reads {qual}::now() on an output path "
                        f"(wall clock; steady_clock is the metrics "
                        f"clock)"))
            for rule, message in hits:
                if rule in op["allowed"]:
                    continue
                if cg.chain_site_allowed(prog, rule, chain):
                    continue
                findings.append(cg.Finding(rule, chain, op, message))
            return False

        cg.walk(prog, root, visit)


BAD_FP_FLAGS = ("-ffast-math", "-funsafe-math-optimizations", "-Ofast")


def check_fp_flags(prog, findings, compdb_commands):
    """D4: every TU defining a function reachable from a deterministic
    root must carry -ffp-contract=off and none of the value-unsafe
    flags. Skipped when no compilation database is available (pure
    --files fixture mode without --compdb)."""
    if not compdb_commands:
        return
    rule = "fp-flags"
    # TU -> a witness chain reaching into it (first reach wins).
    tu_chain = {}
    for root in cg.expand_roots(prog, "deterministic"):
        for qname, chain in cg.reachable_chains(prog, root).items():
            fn = prog.functions[qname]
            if not fn.file.endswith((".cc", ".cpp")):
                continue
            if fn.file not in tu_chain or len(chain) < len(
                    tu_chain[fn.file]):
                tu_chain[fn.file] = chain
    for tu in sorted(tu_chain):
        cmd = compdb_commands.get(tu)
        if cmd is None:
            continue    # header-only or fixture TU not in this compdb
        chain = tu_chain[tu]
        problems = []
        if "-ffp-contract=off" not in cmd:
            problems.append(
                ("ffp-contract",
                 "deterministic TU compiled without -ffp-contract=off "
                 "(FMA contraction varies by compiler/arch)"))
        for flag in BAD_FP_FLAGS:
            if flag in cmd.split():
                problems.append(
                    (flag.lstrip("-"),
                     f"deterministic TU compiled with {flag} "
                     f"(value-unsafe FP)"))
        for name, message in problems:
            op = {"kind": "flags", "name": name, "disp": f"flags:{name}",
                  "file": tu, "line": 1, "allowed": set(), "targets": []}
            if cg.chain_site_allowed(prog, rule, chain):
                continue
            findings.append(cg.Finding(rule, chain, op, message))


BASELINE_HEADER = """\
# pmkm_detcheck baseline (ratchet: this file may only shrink).
#
# One normalized finding key per line:
#   rule|root_function|leaf_function|op_kind:op_name
# New findings fail the gate outright; entries here are tolerated but a
# key that no longer fires is an error until the line is deleted. Keep
# this file empty: fix the code or add a justified
# `// pmkm-detcheck: allow(<rule>)` at the site instead of listing it
# here. Regenerate with: tools/pmkm_detcheck.py --update-baseline
"""


class DetcheckGate(cg.Gate):
    tool = "pmkm_detcheck"
    rules = RULES
    default_baseline = os.path.join("scripts", "detcheck_baseline.txt")
    baseline_header = BASELINE_HEADER

    def collect(self, ctx):
        findings = []
        check_output_paths(ctx.prog, findings)
        check_fp_flags(ctx.prog, findings, ctx.compdb_commands)
        if ctx.virtual == "conservative" and ctx.include_unresolved:
            cg.check_unresolved(ctx.prog, findings)
        return findings


GATE = DetcheckGate()


def main(argv=None):
    return cg.run_main([GATE], argv, prog_name="pmkm_detcheck",
                       doc=__doc__)


if __name__ == "__main__":
    sys.exit(main())
