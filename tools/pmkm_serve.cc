// pmkm_serve: the clustering-as-a-service daemon. Hosts a LocalService
// behind the versioned serve wire protocol (DESIGN.md §15) on a unix or
// loopback TCP endpoint, with admission control, per-client job caps and
// graceful drain on SIGTERM/SIGINT.
//
//   pmkm_serve --endpoint=unix:/tmp/pmkm.sock --workers=2
//   pmkm_serve --endpoint=127.0.0.1:0 --debug_port=0
//
// The bound endpoint is printed as "listening on <endpoint>" once the
// daemon is up (scripts and the serve-smoke CI job key on that line).
// SIGTERM begins a drain: admission stops, every accepted job runs to
// completion and stays fetchable until the last one finishes, then the
// process exits 0.

#include <csignal>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "common/status.h"
#include "obs/debug_server.h"
#include "obs/metrics.h"
#include "serve/daemon.h"

namespace {

int FailWith(const pmkm::Status& status) {
  std::cerr << "pmkm_serve: " << status.ToString() << std::endl;
  return pmkm::StatusExitCode(status);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pmkm;  // NOLINT

  std::string endpoint = "127.0.0.1:0";
  int64_t workers = 2;
  int64_t max_queued_jobs = 16;
  int64_t max_jobs_per_client = 4;
  int64_t finished_retention = 64;
  int64_t budget_memory_kib = 0;
  int64_t budget_cores = 0;
  int64_t handler_threads = 4;
  int64_t io_timeout_ms = 60000;
  ObsFlags obs_flags;

  FlagParser parser;
  parser
      .SetDescription(
          "pmkm_serve: clustering-as-a-service daemon hosting the "
          "ClusterService API over the framed serve protocol.")
      .AddString("endpoint", &endpoint,
                 "listen endpoint: unix:/path or 127.0.0.1:port "
                 "(port 0 = ephemeral)")
      .AddInt("workers", &workers, "concurrent clustering jobs")
      .AddInt("max_queued_jobs", &max_queued_jobs,
              "admission bound on jobs waiting for a worker")
      .AddInt("max_jobs_per_client", &max_jobs_per_client,
              "per-client cap on live jobs (0 = uncapped)")
      .AddInt("finished_retention", &finished_retention,
              "finished jobs kept for status/fetch before eviction")
      .AddInt("budget_memory_kib", &budget_memory_kib,
              "per-operator memory ceiling imposed on every job "
              "(0 = jobs keep their own ask)")
      .AddInt("budget_cores", &budget_cores,
              "core ceiling imposed on every job (0 = host default)")
      .AddInt("handler_threads", &handler_threads,
              "concurrent client connections served")
      .AddInt("io_timeout_ms", &io_timeout_ms,
              "per-socket-op timeout for clients (0 = none)");
  obs_flags.Register(&parser);

  {
    const Status status = parser.Parse(argc, argv);
    if (status.IsCancelled()) return 0;  // --help
    if (!status.ok()) {
      std::cerr << parser.Usage(argv[0]);
      return FailWith(status);
    }
  }
  if (const Status status = obs_flags.Apply(); !status.ok()) {
    return FailWith(status);
  }
  if (workers <= 0 || max_queued_jobs <= 0 || handler_threads <= 0 ||
      finished_retention < 0 || max_jobs_per_client < 0) {
    return FailWith(Status::InvalidArgument(
        "--workers, --max_queued_jobs and --handler_threads must be >= 1; "
        "caps must be >= 0"));
  }

  // Block the shutdown signals before any thread exists so every thread
  // inherits the mask and sigwait() below is the single delivery point.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  // Optional live introspection server (shared --debug_port flag).
  MetricsRegistry metrics;
  obs::DebugServer debug_server(&metrics, nullptr);
  serve::DaemonOptions options;
  if (obs_flags.serve_requested()) {
    obs::DebugServer::Options server_options;
    server_options.port = static_cast<int>(obs_flags.debug_port);
    if (const Status status = debug_server.Start(server_options);
        !status.ok()) {
      return FailWith(status);
    }
    std::cout << "debug server listening on http://127.0.0.1:"
              << debug_server.port() << "/" << std::endl;
    options.service.debug_server = &debug_server;
  }

  options.endpoint = endpoint;
  options.service.num_workers = static_cast<size_t>(workers);
  options.service.max_queued_jobs = static_cast<size_t>(max_queued_jobs);
  options.service.max_jobs_per_client =
      static_cast<size_t>(max_jobs_per_client);
  options.service.finished_retention =
      static_cast<size_t>(finished_retention);
  if (budget_memory_kib > 0) {
    options.service.budget.memory_bytes_per_operator =
        static_cast<size_t>(budget_memory_kib) << 10;
  } else {
    options.service.budget.memory_bytes_per_operator = 0;  // no ceiling
  }
  options.service.budget.cores = static_cast<size_t>(budget_cores);
  options.num_handler_threads = static_cast<size_t>(handler_threads);
  options.io_timeout_ms = static_cast<int>(io_timeout_ms);

  serve::ServeDaemon daemon;
  if (const Status status = daemon.Start(options); !status.ok()) {
    return FailWith(status);
  }
  if (daemon.service() != nullptr && obs_flags.serve_requested()) {
    // Live job table on the debug server.
    serve::LocalService* service = daemon.service();
    debug_server.RegisterEndpoint(
        "/jobz", "live job table (queued/running/finished)",
        "application/json", [service] { return service->JobsJson(); });
  }
  std::cout << "listening on " << daemon.bound_endpoint() << std::endl;

  // Park until SIGTERM/SIGINT, then drain: stop admission, let every
  // accepted job finish (still serving status/fetch), and exit cleanly.
  int sig = 0;
  sigwait(&sigs, &sig);
  std::cout << "signal " << sig
            << " received; draining accepted jobs" << std::endl;
  daemon.BeginDrain();
  daemon.DrainAndStop();
  std::cout << "drained; exiting" << std::endl;
  return 0;
}
