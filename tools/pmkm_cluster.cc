// pmkm_cluster — clusters grid-bucket files from the command line and
// writes one model file per cell.
//
//   $ pmkm_cluster --algo=pm --k=40 --splits=10 --out=models \
//         buckets/*.pmkb
//
// Algorithms: pm (partial/merge, default), serial, stream (full engine
// with resource-driven planning). Engine-level flags (--k, --restarts,
// --memory-kib, --cores, --failure_policy, --max_retries,
// --op_timeout_ms, --kernel) come from EngineFlags and are shared with
// the stream benches.
//
// The stream path runs through the ClusterService API (serve/service.h):
// by default an in-process LocalService, or — with
// --server=unix:/path | --server=127.0.0.1:port — a pmkm_serve daemon
// over the wire protocol. Both backends produce byte-identical models;
// engine-side observability (--stats, --metrics_out, --trace_out,
// --profile_out, --explain) is collected in the executing process and is
// therefore local-backend only.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <thread>

#include "cluster/metrics.h"
#include "cluster/partial_merge.h"
#include "cluster/serialize.h"
#include "common/fault.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "data/csv.h"
#include "obs/debug_server.h"
#include "obs/flusher.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/local_service.h"
#include "serve/remote_service.h"
#include "stream/engine.h"
#include "stream/explain.h"

namespace {

int Fail(const pmkm::Status& st) {
  std::cerr << "pmkm_cluster: " << st << "\n";
  return pmkm::StatusExitCode(st);
}

pmkm::Status WriteTextFile(const std::string& path,
                           const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  if (!out.good()) {
    return pmkm::Status::IOError("cannot write " + path);
  }
  return pmkm::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "pm";
  std::string out = "models";
  int64_t splits = 10;
  bool quiet = false;
  bool explain = false;
  std::string csv_dir;
  std::string faults;
  std::string server;
  bool stats = false;
  std::string metrics_out;
  std::string prom_out;
  std::string trace_out;
  std::string profile_out;
  int64_t debug_linger_ms = 0;
  int64_t flush_interval_ms = 1000;
  pmkm::ObsFlags obs_flags;
  pmkm::EngineFlags engine_flags;
  pmkm::FlagParser parser;
  parser
      .SetDescription(
          "pmkm_cluster: cluster grid-bucket files and write one .pmkm "
          "model per cell.")
      .SetPositionalUsage("bucket.pmkb [bucket2.pmkb ...]")
      .AddString("algo", &algo, "pm | serial | stream")
      .AddString("out", &out, "output directory for .pmkm model files")
      .AddString("csv-dir", &csv_dir,
                 "also export centroids+weights as CSV here (optional)")
      .AddInt("splits", &splits, "pm: partitions per cell")
      .AddString("faults", &faults,
                 "arm fault-injection sites, e.g. io.read:p=0.05,seed=7")
      .AddString("server", &server,
                 "stream: run the job on a pmkm_serve daemon at this "
                 "endpoint (unix:/path or host:port) instead of "
                 "in-process")
      .AddBool("explain", &explain,
               "stream: print the physical plan before running")
      .AddBool("stats", &stats,
               "stream: print EXPLAIN ANALYZE (per-operator stats) after "
               "the run")
      .AddString("metrics_out", &metrics_out,
                 "stream: write the metrics registry as JSON here")
      .AddString("prom_out", &prom_out,
                 "stream: write the metrics registry as Prometheus text "
                 "here")
      .AddString("trace_out", &trace_out,
                 "stream: write a Chrome trace_event JSON here (open in "
                 "chrome://tracing or Perfetto)")
      .AddString("profile_out", &profile_out,
                 "write a folded-stack CPU profile of the run here "
                 "(flamegraph/speedscope input; see pmkm_inspect profile)")
      .AddInt("debug_linger_ms", &debug_linger_ms,
              "keep the debug server up this long after the run finishes "
              "(lets scrapers read the final state)")
      .AddInt("flush_interval_ms", &flush_interval_ms,
              "stream: periodically flush --metrics_out/--prom_out/"
              "--trace_out snapshots while running, so a killed run still "
              "leaves recent artifacts (0 = end-of-run only)")
      .AddBool("quiet", &quiet, "suppress the per-cell report");
  obs_flags.Register(&parser);
  engine_flags.Register(&parser);
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok()) return Fail(st);
  if (const pmkm::Status os = obs_flags.Apply(); !os.ok()) {
    return Fail(os);
  }
  if (!faults.empty()) {
    const pmkm::Status fs =
        pmkm::FaultRegistry::Global().ArmFromString(faults);
    if (!fs.ok()) return Fail(fs);
  }
  auto options = engine_flags.ToOptions();
  if (!options.ok()) return Fail(options.status());
  if (parser.positional().empty()) {
    std::cerr << parser.Usage(argv[0]);
    return Fail(pmkm::Status::InvalidArgument("no bucket files given"));
  }
  // The serial and pm paths run k-means outside the engine; point the
  // process default kernel at the chosen one so --kernel applies there
  // too (the stream path resolves it per-run via the builder).
  {
    auto prev = pmkm::SetDefaultKernel(options->kernel);
    if (!prev.ok()) return Fail(prev.status());
  }
  std::filesystem::create_directories(out);

  auto report = [&](const pmkm::GridCellId& cell, size_t points,
                    const pmkm::ClusteringModel& model, double ms) {
    if (quiet) return;
    std::cout << cell.ToString() << ": " << points << " pts -> k="
              << model.k() << ", E=" << model.sse << ", " << ms
              << " ms\n";
  };
  auto save = [&](const pmkm::GridCellId& cell,
                  const pmkm::ClusteringModel& model) -> pmkm::Status {
    PMKM_RETURN_NOT_OK(
        pmkm::SaveModel(out + "/" + cell.ToString() + ".pmkm", model));
    if (!csv_dir.empty()) {
      std::filesystem::create_directories(csv_dir);
      PMKM_RETURN_NOT_OK(pmkm::WriteWeightedCsv(
          csv_dir + "/" + cell.ToString() + ".csv", model.ToWeighted()));
    }
    return pmkm::Status::OK();
  };

  if (algo == "stream") {
    // The job, as the ClusterService sees it — identical for both
    // backends.
    pmkm::serve::JobSpec spec;
    spec.bucket_paths = parser.positional();
    spec.engine = engine_flags;
    spec.run_id = obs_flags.run_id;
    spec.client = "pmkm_cluster";

    if (!server.empty()) {
      // Remote backend: the engine (and its instrumentation) lives in
      // the daemon process.
      if (explain || stats || !metrics_out.empty() || !prom_out.empty() ||
          !trace_out.empty() || !profile_out.empty()) {
        return Fail(pmkm::Status::InvalidArgument(
            "--explain/--stats/--metrics_out/--prom_out/--trace_out/"
            "--profile_out collect engine-side state and are only "
            "available without --server (use the daemon's --debug_port "
            "introspection instead)"));
      }
      pmkm::serve::RemoteService remote;
      if (const pmkm::Status cs = remote.Connect(server); !cs.ok()) {
        return Fail(cs);
      }
      auto job_id = remote.SubmitJob(spec);
      if (!job_id.ok()) return Fail(job_id.status());
      if (!quiet) {
        std::cout << "job " << *job_id << " submitted to " << server
                  << " (protocol v" << remote.negotiated_version()
                  << ")\n";
      }
      auto info = remote.AwaitJob(*job_id, 0);
      if (!info.ok()) return Fail(info.status());
      if (!info->status.ok()) return Fail(info->status);
      auto cells = remote.FetchModel(*job_id);
      if (!cells.ok()) return Fail(cells.status());
      for (const auto& [id, cell] : *cells) {
        const pmkm::Status ss = save(id, cell.model);
        if (!ss.ok()) return Fail(ss);
        report(id, cell.input_points, cell.model,
               info->wall_seconds * 1e3 /
                   static_cast<double>(cells->size()));
      }
      std::cout << cells->size() << " cell(s) clustered remotely on "
                << server << ", " << info->wall_seconds << " s total\n";
      return 0;
    }

    // Local backend: one in-process LocalService worker, with the
    // engine's full observability surface wired through it.
    pmkm::MetricsRegistry registry;
    pmkm::TraceRecorder tracer;
    pmkm::obs::DebugServer debug_server(&registry, &tracer);
    const bool serve = obs_flags.serve_requested();
    pmkm::serve::LocalServiceOptions lopts;
    lopts.num_workers = 1;
    lopts.max_queued_jobs = 1;
    lopts.max_jobs_per_client = 0;
    if (serve || stats || !metrics_out.empty() || !prom_out.empty()) {
      lopts.metrics = &registry;
    }
    if (serve || !trace_out.empty()) lopts.trace = &tracer;
    if (serve) {
      // Serving without a trace file: bound the recorder so a long run
      // keeps a ring of recent spans instead of growing forever.
      if (trace_out.empty()) tracer.SetCapacity(4096);
      pmkm::obs::DebugServer::Options srv;
      srv.port = static_cast<int>(obs_flags.debug_port);
      const pmkm::Status ss = debug_server.Start(srv);
      if (!ss.ok()) return Fail(ss);
      // std::endl: scripts watch a redirected (fully buffered) stdout for
      // this line to learn the ephemeral port, so it must flush now.
      std::cout << "debug server listening on http://127.0.0.1:"
                << debug_server.port() << "/" << std::endl;
      lopts.debug_server = &debug_server;
    }
    if (!profile_out.empty()) {
      const pmkm::Status ps = pmkm::obs::CpuProfiler::Global().Start();
      if (!ps.ok()) return Fail(ps);
    }
    // Periodic snapshot flushing: a run killed mid-flight (OOM, SIGKILL)
    // still leaves recent artifacts on disk.
    pmkm::obs::SnapshotFlusher flusher(&registry, &tracer);
    if (flush_interval_ms > 0 &&
        !(metrics_out.empty() && prom_out.empty() && trace_out.empty())) {
      pmkm::obs::SnapshotFlusher::Options fopt;
      fopt.interval_ms = static_cast<int>(flush_interval_ms);
      fopt.metrics_json_path = metrics_out;
      fopt.metrics_prom_path = prom_out;
      fopt.trace_json_path = trace_out;
      const pmkm::Status fs = flusher.Start(fopt);
      if (!fs.ok()) return Fail(fs);
    }
    // Final-state artifact writes, shared by the success and failure
    // paths: a failed run exports everything collected up to the error.
    auto write_artifacts = [&]() -> pmkm::Status {
      pmkm::Status first;
      auto keep = [&first](pmkm::Status s) {
        if (first.ok() && !s.ok()) first = std::move(s);
      };
      if (!metrics_out.empty()) {
        keep(WriteTextFile(metrics_out, registry.ToJsonString() + "\n"));
      }
      if (!prom_out.empty()) {
        keep(WriteTextFile(prom_out, registry.ToPrometheusText()));
      }
      if (!trace_out.empty()) keep(tracer.WriteJson(trace_out));
      return first;
    };
    auto stop_profiler = [&]() {
      if (profile_out.empty()) return;
      (void)pmkm::obs::CpuProfiler::Global().Stop();  // stopping is final
      const pmkm::Status ws =
          pmkm::obs::CpuProfiler::Global().WriteFolded(profile_out);
      if (!ws.ok()) std::cerr << "warning: " << ws << "\n";
    };
    auto linger = [&]() {
      if (!serve || debug_linger_ms <= 0) return;
      // Explicit grace period for scrapers, requested via flag.
      std::this_thread::sleep_for(  // pmkm-lint: allow(sleep)
          std::chrono::milliseconds(debug_linger_ms));
    };
    if (explain) {
      auto text =
          pmkm::PipelineBuilder(*options).Explain(parser.positional());
      if (!text.ok()) return Fail(text.status());
      std::cout << *text;
    }

    pmkm::serve::LocalService local(lopts);
    uint64_t job_id = 0;
    pmkm::Result<pmkm::StreamRunResult> run =
        pmkm::Status::Internal("job never ran");
    {
      auto submitted = local.SubmitJob(spec);
      if (submitted.ok()) {
        job_id = *submitted;
        auto info = local.AwaitJob(job_id, 0);
        if (info.ok() && info->status.ok()) {
          run = local.RunResult(job_id);
        } else {
          run = info.ok() ? pmkm::Result<pmkm::StreamRunResult>(
                                info->status)
                          : pmkm::Result<pmkm::StreamRunResult>(
                                info.status());
        }
      } else {
        run = submitted.status();
      }
    }
    if (!run.ok()) {
      flusher.Stop();
      // Export what the failed run collected; its error dominates any
      // artifact-write error.
      (void)write_artifacts();
      stop_profiler();
      linger();
      return Fail(run.status());
    }
    flusher.Stop();
    stop_profiler();
    if (stats) {
      std::cout << "\nEXPLAIN ANALYZE\n"
                << pmkm::ExplainAnalyzePartialMerge(options->partial,
                                                    options->merge, *run);
    }
    if (const pmkm::Status ws = write_artifacts(); !ws.ok()) {
      return Fail(ws);
    }
    for (const auto& [id, cell] : run->cells) {
      const pmkm::Status ss = save(id, cell.model);
      if (!ss.ok()) return Fail(ss);
      report(id, cell.input_points, cell.model,
             run->wall_seconds * 1e3 /
                 static_cast<double>(run->cells.size()));
    }
    std::cout << run->cells.size() << " cell(s) clustered via "
              << run->plan.partial_clones << " partial clone(s), chunk="
              << run->plan.chunk_points << " pts, "
              << run->wall_seconds << " s total\n";
    if (run->report.cells_resumed > 0) {
      std::cout << run->report.cells_resumed
                << " cell(s) restored from the checkpoint (epoch "
                << run->report.checkpoint_epoch << "), "
                << (run->cells.size() - run->report.cells_resumed)
                << " recomputed\n";
    }
    std::cout << run->report.Summary() << "\n";
    if (run->report.degraded) {
      std::cerr << "warning: run is DEGRADED — results cover only the "
                   "healthy subset of cells\n";
    }
    linger();
    return 0;
  }

  for (const std::string& path : parser.positional()) {
    auto bucket = pmkm::ReadGridBucket(path);
    if (!bucket.ok()) return Fail(bucket.status());
    const pmkm::Stopwatch watch;
    pmkm::ClusteringModel model;
    if (algo == "serial") {
      auto fitted = pmkm::KMeans(options->partial).Fit(bucket->points);
      if (!fitted.ok()) return Fail(fitted.status());
      model = std::move(fitted).value();
    } else if (algo == "pm") {
      pmkm::PartialMergeConfig config;
      config.partial = options->partial;
      config.num_partitions = static_cast<size_t>(splits);
      auto result = pmkm::PartialMergeKMeans(config).Run(bucket->points);
      if (!result.ok()) return Fail(result.status());
      model = std::move(result->model);
    } else {
      return Fail(pmkm::Status::InvalidArgument(
          "unknown --algo=" + algo + " (use pm|serial|stream)"));
    }
    const double ms = watch.ElapsedMillis();
    const pmkm::Status ss = save(bucket->cell, model);
    if (!ss.ok()) return Fail(ss);
    report(bucket->cell, bucket->points.size(), model, ms);
  }
  return 0;
}
