// pmkm_cluster — clusters grid-bucket files from the command line and
// writes one model file per cell.
//
//   $ pmkm_cluster --algo=pm --k=40 --splits=10 --out=models \
//         buckets/*.pmkb
//
// Algorithms: pm (partial/merge, default), serial, stream (full engine
// with resource-driven planning). Engine-level flags (--k, --restarts,
// --memory-kib, --cores, --failure_policy, --max_retries,
// --op_timeout_ms, --kernel) come from EngineFlags and are shared with
// the stream benches; the stream path runs through PipelineBuilder.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>

#include "cluster/metrics.h"
#include "cluster/partial_merge.h"
#include "cluster/serialize.h"
#include "common/fault.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "data/csv.h"
#include "obs/debug_server.h"
#include "obs/flusher.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "stream/engine.h"
#include "stream/explain.h"

namespace {

int Fail(const pmkm::Status& st) {
  std::cerr << st << "\n";
  return 1;
}

pmkm::Status WriteTextFile(const std::string& path,
                           const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  if (!out.good()) {
    return pmkm::Status::IOError("cannot write " + path);
  }
  return pmkm::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "pm";
  std::string out = "models";
  int64_t splits = 10;
  bool quiet = false;
  bool explain = false;
  std::string csv_dir;
  std::string faults;
  bool stats = false;
  std::string metrics_out;
  std::string prom_out;
  std::string trace_out;
  std::string log_format = "text";
  std::string run_id;
  std::string profile_out;
  int64_t debug_port = -1;
  int64_t debug_linger_ms = 0;
  int64_t flush_interval_ms = 1000;
  pmkm::EngineFlags engine_flags;
  pmkm::FlagParser parser;
  parser.AddString("algo", &algo, "pm | serial | stream")
      .AddString("out", &out, "output directory for .pmkm model files")
      .AddString("csv-dir", &csv_dir,
                 "also export centroids+weights as CSV here (optional)")
      .AddInt("splits", &splits, "pm: partitions per cell")
      .AddString("faults", &faults,
                 "arm fault-injection sites, e.g. io.read:p=0.05,seed=7")
      .AddBool("explain", &explain,
               "stream: print the physical plan before running")
      .AddBool("stats", &stats,
               "stream: print EXPLAIN ANALYZE (per-operator stats) after "
               "the run")
      .AddString("metrics_out", &metrics_out,
                 "stream: write the metrics registry as JSON here")
      .AddString("prom_out", &prom_out,
                 "stream: write the metrics registry as Prometheus text "
                 "here")
      .AddString("trace_out", &trace_out,
                 "stream: write a Chrome trace_event JSON here (open in "
                 "chrome://tracing or Perfetto)")
      .AddString("log_format", &log_format,
                 "log line format: text | json (structured lines)")
      .AddString("run_id", &run_id,
                 "stream: explicit run id tagging all artifacts "
                 "(default: generated)")
      .AddString("profile_out", &profile_out,
                 "write a folded-stack CPU profile of the run here "
                 "(flamegraph/speedscope input; see pmkm_inspect profile)")
      .AddInt("debug_port", &debug_port,
              "serve live introspection (/metrics /statusz /runz /tracez "
              "/pprofz /healthz) on 127.0.0.1:PORT; 0 = ephemeral port, "
              "-1 = off")
      .AddInt("debug_linger_ms", &debug_linger_ms,
              "keep the debug server up this long after the run finishes "
              "(lets scrapers read the final state)")
      .AddInt("flush_interval_ms", &flush_interval_ms,
              "stream: periodically flush --metrics_out/--prom_out/"
              "--trace_out snapshots while running, so a killed run still "
              "leaves recent artifacts (0 = end-of-run only)")
      .AddBool("quiet", &quiet, "suppress the per-cell report");
  engine_flags.Register(&parser);
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok()) return Fail(st);
  {
    pmkm::LogFormat format;
    if (!pmkm::ParseLogFormat(log_format, &format)) {
      return Fail(pmkm::Status::InvalidArgument(
          "--log_format=" + log_format + " (use text|json)"));
    }
    pmkm::SetLogFormat(format);
  }
  if (!faults.empty()) {
    const pmkm::Status fs =
        pmkm::FaultRegistry::Global().ArmFromString(faults);
    if (!fs.ok()) return Fail(fs);
  }
  auto options = engine_flags.ToOptions();
  if (!options.ok()) return Fail(options.status());
  if (parser.positional().empty()) {
    std::cerr << "usage: " << argv[0]
              << " [flags] bucket.pmkb [bucket2.pmkb ...]\n"
              << parser.Usage(argv[0]);
    return 1;
  }
  // The serial and pm paths run k-means outside the engine; point the
  // process default kernel at the chosen one so --kernel applies there
  // too (the stream path resolves it per-run via the builder).
  {
    auto prev = pmkm::SetDefaultKernel(options->kernel);
    if (!prev.ok()) return Fail(prev.status());
  }
  std::filesystem::create_directories(out);

  auto report = [&](const pmkm::GridCellId& cell, size_t points,
                    const pmkm::ClusteringModel& model, double ms) {
    if (quiet) return;
    std::cout << cell.ToString() << ": " << points << " pts -> k="
              << model.k() << ", E=" << model.sse << ", " << ms
              << " ms\n";
  };
  auto save = [&](const pmkm::GridCellId& cell,
                  const pmkm::ClusteringModel& model) -> pmkm::Status {
    PMKM_RETURN_NOT_OK(
        pmkm::SaveModel(out + "/" + cell.ToString() + ".pmkm", model));
    if (!csv_dir.empty()) {
      std::filesystem::create_directories(csv_dir);
      PMKM_RETURN_NOT_OK(pmkm::WriteWeightedCsv(
          csv_dir + "/" + cell.ToString() + ".csv", model.ToWeighted()));
    }
    return pmkm::Status::OK();
  };

  if (algo == "stream") {
    pmkm::PipelineBuilder builder(*options);
    // Observability is on only when some output (or the debug server)
    // asks for it; otherwise the pipeline runs with null sinks (zero
    // instrumentation cost).
    pmkm::MetricsRegistry registry;
    pmkm::TraceRecorder tracer;
    pmkm::obs::DebugServer server(&registry, &tracer);
    const bool serve = debug_port >= 0;
    if (serve || stats || !metrics_out.empty() || !prom_out.empty()) {
      builder.WithMetrics(&registry);
    }
    if (serve || !trace_out.empty()) builder.WithTrace(&tracer);
    if (serve) {
      // Serving without a trace file: bound the recorder so a long run
      // keeps a ring of recent spans instead of growing forever.
      if (trace_out.empty()) tracer.SetCapacity(4096);
      pmkm::obs::DebugServer::Options srv;
      srv.port = static_cast<int>(debug_port);
      const pmkm::Status ss = server.Start(srv);
      if (!ss.ok()) return Fail(ss);
      // std::endl: scripts watch a redirected (fully buffered) stdout for
      // this line to learn the ephemeral port, so it must flush now.
      std::cout << "debug server listening on http://127.0.0.1:"
                << server.port() << "/" << std::endl;
      builder.WithDebugServer(&server);
    }
    if (!run_id.empty()) builder.WithRunId(run_id);
    if (!profile_out.empty()) {
      const pmkm::Status ps = pmkm::obs::CpuProfiler::Global().Start();
      if (!ps.ok()) return Fail(ps);
    }
    // Periodic snapshot flushing: a run killed mid-flight (OOM, SIGKILL)
    // still leaves recent artifacts on disk.
    pmkm::obs::SnapshotFlusher flusher(&registry, &tracer);
    if (flush_interval_ms > 0 &&
        !(metrics_out.empty() && prom_out.empty() && trace_out.empty())) {
      pmkm::obs::SnapshotFlusher::Options fopt;
      fopt.interval_ms = static_cast<int>(flush_interval_ms);
      fopt.metrics_json_path = metrics_out;
      fopt.metrics_prom_path = prom_out;
      fopt.trace_json_path = trace_out;
      const pmkm::Status fs = flusher.Start(fopt);
      if (!fs.ok()) return Fail(fs);
    }
    // Final-state artifact writes, shared by the success and failure
    // paths: a failed run exports everything collected up to the error.
    auto write_artifacts = [&]() -> pmkm::Status {
      pmkm::Status first;
      auto keep = [&first](pmkm::Status s) {
        if (first.ok() && !s.ok()) first = std::move(s);
      };
      if (!metrics_out.empty()) {
        keep(WriteTextFile(metrics_out, registry.ToJsonString() + "\n"));
      }
      if (!prom_out.empty()) {
        keep(WriteTextFile(prom_out, registry.ToPrometheusText()));
      }
      if (!trace_out.empty()) keep(tracer.WriteJson(trace_out));
      return first;
    };
    auto stop_profiler = [&]() {
      if (profile_out.empty()) return;
      (void)pmkm::obs::CpuProfiler::Global().Stop();  // stopping is final
      const pmkm::Status ws =
          pmkm::obs::CpuProfiler::Global().WriteFolded(profile_out);
      if (!ws.ok()) std::cerr << "warning: " << ws << "\n";
    };
    auto linger = [&]() {
      if (!serve || debug_linger_ms <= 0) return;
      // Explicit grace period for scrapers, requested via flag.
      std::this_thread::sleep_for(  // pmkm-lint: allow(sleep)
          std::chrono::milliseconds(debug_linger_ms));
    };
    if (explain) {
      auto text = builder.Explain(parser.positional());
      if (!text.ok()) return Fail(text.status());
      std::cout << *text;
    }
    auto run = builder.Run(parser.positional());
    if (!run.ok()) {
      flusher.Stop();
      // Export what the failed run collected; its error dominates any
      // artifact-write error.
      (void)write_artifacts();
      stop_profiler();
      linger();
      return Fail(run.status());
    }
    flusher.Stop();
    stop_profiler();
    if (stats) {
      std::cout << "\nEXPLAIN ANALYZE\n"
                << pmkm::ExplainAnalyzePartialMerge(options->partial,
                                                    options->merge, *run);
    }
    if (const pmkm::Status ws = write_artifacts(); !ws.ok()) {
      return Fail(ws);
    }
    for (const auto& [id, cell] : run->cells) {
      const pmkm::Status ss = save(id, cell.model);
      if (!ss.ok()) return Fail(ss);
      report(id, cell.input_points, cell.model,
             run->wall_seconds * 1e3 /
                 static_cast<double>(run->cells.size()));
    }
    std::cout << run->cells.size() << " cell(s) clustered via "
              << run->plan.partial_clones << " partial clone(s), chunk="
              << run->plan.chunk_points << " pts, "
              << run->wall_seconds << " s total\n";
    if (run->report.cells_resumed > 0) {
      std::cout << run->report.cells_resumed
                << " cell(s) restored from the checkpoint (epoch "
                << run->report.checkpoint_epoch << "), "
                << (run->cells.size() - run->report.cells_resumed)
                << " recomputed\n";
    }
    std::cout << run->report.Summary() << "\n";
    if (run->report.degraded) {
      std::cerr << "warning: run is DEGRADED — results cover only the "
                   "healthy subset of cells\n";
    }
    linger();
    return 0;
  }

  for (const std::string& path : parser.positional()) {
    auto bucket = pmkm::ReadGridBucket(path);
    if (!bucket.ok()) return Fail(bucket.status());
    const pmkm::Stopwatch watch;
    pmkm::ClusteringModel model;
    if (algo == "serial") {
      auto fitted = pmkm::KMeans(options->partial).Fit(bucket->points);
      if (!fitted.ok()) return Fail(fitted.status());
      model = std::move(fitted).value();
    } else if (algo == "pm") {
      pmkm::PartialMergeConfig config;
      config.partial = options->partial;
      config.num_partitions = static_cast<size_t>(splits);
      auto result = pmkm::PartialMergeKMeans(config).Run(bucket->points);
      if (!result.ok()) return Fail(result.status());
      model = std::move(result->model);
    } else {
      std::cerr << "unknown --algo=" << algo
                << " (use pm|serial|stream)\n";
      return 1;
    }
    const double ms = watch.ElapsedMillis();
    const pmkm::Status ss = save(bucket->cell, model);
    if (!ss.ok()) return Fail(ss);
    report(bucket->cell, bucket->points.size(), model, ms);
  }
  return 0;
}
