#!/usr/bin/env python3
"""pmkm_ctxcheck: whole-program call-graph analyzer for execution-context
safety (DESIGN.md §16).

Builds a conservative whole-program call graph of the pmkm tree (class-
hierarchy resolution for virtual calls; escaping std::function callables
reported as indirect edges, not ignored) and verifies four context rules
from roots annotated in src/common/annotations.h:

  signal-safe          PMKM_SIGNAL_SAFE roots (the SIGPROF handler, crash
                       paths) transitively stay on the POSIX async-signal-
                       safe allowlist: no allocation, no locks, no stdio,
                       no unknown external calls.
  no-block-under-lock  No blocking primitive (read/write/fsync/accept/
                       recv/send/Pop/CondVar::Wait/sleep/...) reachable
                       from a call made while a pmkm::Mutex is held.
                       Acquiring another annotated Mutex under a lock is
                       allowed: this very rule globally guarantees no
                       holder blocks, so acquisition is bounded (ordering
                       is the PR-5 runtime witness's job). A CondVar wait
                       performed *directly* by the lock-holding function
                       is exempt (the wait releases that mutex); the same
                       wait inside a callee blocks the caller's lock and
                       is flagged. Functions annotated
                       PMKM_NO_BLOCK_UNDER_LOCK, marked PMKM_REQUIRES, or
                       named *Locked are additionally checked as if a
                       lock were held on entry. The pmkm::Mutex/CondVar
                       bodies and the schedcheck scheduler are exempt:
                       they ARE the blocking primitives this rule models
                       (allowlist policy, DESIGN.md §16).
  wait-free            PMKM_WAITFREE roots (RollingHistogram::Record,
                       kernel AssignBlock, metric instruments) never
                       allocate, lock, block, throw, or call through an
                       escaping callable. Unknown external calls are
                       tolerated (unlike signal-safe): pure math does not
                       wait.
  bounded-handler      PMKM_BOUNDED_HANDLER roots (debug-server and serve
                       session handlers) only use timeout-bounded
                       blocking primitives: CondVar::WaitFor and
                       sleep_for are fine; CondVar::Wait, queue Push/Pop,
                       join, and raw socket/file syscalls are findings
                       unless the site carries an allow documenting the
                       bound (e.g. SO_RCVTIMEO/SO_SNDTIMEO).

The call-graph engine (compdb ingestion and staleness gate, header-first
TU parse, CHA virtual resolution with receiver-type narrowing, witness
chains, ratcheted-baseline/sysexits contract) lives in
tools/pmkm_callgraph.py, shared with the determinism analyzer
tools/pmkm_detcheck.py (DESIGN.md §17). This module contributes only the
four context rules above. Running tools/pmkm_callgraph.py directly runs
both analyzers over a single compdb read and source parse (the CI gate).

Every finding prints the full witness chain root -> ... -> violating
operation. Baseline ratchet: findings whose normalized key appears in
--baseline are reported as baselined (exit 0); NEW findings fail, and
stale baseline entries (no longer produced) also fail — the baseline may
only shrink. Suppress a single site with
`// pmkm-ctxcheck: allow(<rule>[, <rule>...])` on the offending line or
the line above, with a justification; an allow anywhere on the witness
chain suppresses the finding.

Exit codes follow the sysexits contract of pmkm_inspect/pmkm_lint:
  0   clean (or all findings baselined)
  64  usage error
  65  findings / stale baseline / stale compile_commands.json
  66  compile_commands.json (or an input file) not found
  74  I/O error reading inputs

Usage:
  tools/pmkm_ctxcheck.py [--root DIR] [--compdb PATH] [--files F...]
                         [--baseline PATH] [--update-baseline]
                         [--virtual {cha,conservative}]
                         [--dump-callgraph PATH] [--list-rules] [--stats]
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import pmkm_callgraph as cg  # noqa: E402

RULES = {
    "signal-safe": "async-signal-unsafe operation reachable from a "
                   "PMKM_SIGNAL_SAFE root",
    "no-block-under-lock": "blocking primitive reachable while a "
                           "pmkm::Mutex is held",
    "wait-free": "allocation/lock/block/throw reachable from a "
                 "PMKM_WAITFREE root",
    "bounded-handler": "unbounded blocking reachable from a "
                       "PMKM_BOUNDED_HANDLER root",
}


def check_signal_safe(prog, findings):
    rule = "signal-safe"
    for root in cg.expand_roots(prog, rule):
        op_chains = {}

        def visit(fn, op, chain, op_chains=op_chains):
            op_chains.setdefault(id(op), (op, chain))
            kind, cat = op["kind"], op.get("category")
            bad = None
            if kind == "new":
                bad = "allocates in signal context"
            elif kind == "throw":
                bad = "throws in signal context"
            elif kind == "stdio":
                bad = "stdio in signal context"
            elif kind == "indirect":
                bad = "indirect call in signal context (target unknown)"
            elif kind == "call" and cat is not None:
                if op["name"] in cg.SIGNAL_SAFE_ALLOW:
                    return False
                if cat in ("lock", "condvar_wait", "condvar_waitfor",
                           "notify"):
                    bad = "lock/condvar in signal context"
                elif cat in ("alloc", "throw_ext"):
                    bad = "allocating/throwing call in signal context"
                elif cat in ("blocking", "sleep", "sleep_bounded"):
                    bad = "blocking call in signal context"
                elif cat == "unknown":
                    bad = (f"`{op['name']}` is not on the async-signal-"
                           f"safe allowlist")
            if (bad and rule not in op["allowed"]
                    and not cg.chain_site_allowed(prog, rule, chain)):
                findings.append(cg.Finding(rule, chain, op, bad))
            return False

        cg.walk(prog, root, visit)


def check_wait_free(prog, findings):
    rule = "wait-free"
    for root in cg.expand_roots(prog, rule):
        def visit(fn, op, chain):
            kind, cat = op["kind"], op.get("category")
            bad = None
            if kind == "new":
                bad = "allocates on a wait-free path"
            elif kind == "throw":
                bad = "throws on a wait-free path"
            elif kind == "stdio":
                bad = "stdio on a wait-free path"
            elif kind == "indirect":
                bad = "indirect call on a wait-free path"
            elif kind == "call" and cat is not None:
                if cat in ("alloc", "throw_ext"):
                    bad = "allocating/throwing call on a wait-free path"
                elif cat == "lock":
                    bad = "acquires a lock on a wait-free path"
                elif cat in ("condvar_wait", "condvar_waitfor", "blocking",
                             "sleep", "sleep_bounded"):
                    bad = "blocks on a wait-free path"
            if (bad and rule not in op["allowed"]
                    and not cg.chain_site_allowed(prog, rule, chain)):
                findings.append(cg.Finding(rule, chain, op, bad))
            return False

        cg.walk(prog, root, visit)


def check_bounded_handler(prog, findings):
    rule = "bounded-handler"
    for root in cg.expand_roots(prog, rule):
        def visit(fn, op, chain):
            kind, cat = op["kind"], op.get("category")
            bad = None
            if kind == "indirect":
                bad = ("indirect call in a bounded handler (target "
                       "unknown, bound unverifiable)")
            elif kind == "stdio":
                bad = "unbounded stdio in a bounded handler"
            elif kind == "call" and cat is not None:
                if cat == "condvar_wait":
                    bad = ("unbounded CondVar::Wait in a bounded handler; "
                           "use WaitFor")
                elif cat == "blocking":
                    bad = (f"blocking `{op['name']}` in a bounded handler "
                           f"needs a timeout bound (allow with the bound "
                           f"documented)")
                elif cat == "sleep":
                    bad = "unbounded sleep in a bounded handler"
            if (bad and rule not in op["allowed"]
                    and not cg.chain_site_allowed(prog, rule, chain)):
                findings.append(cg.Finding(rule, chain, op, bad))
            return False

        cg.walk(prog, root, visit)


def blocking_closure(prog, start_qnames, cache):
    """Reachable blocking ops (with witness subchains) from the given
    functions. condvar waits inside callees count: they block whatever
    lock the *caller* holds. Lock acquisition does not count (bounded by
    this very rule, see module docstring)."""
    key = tuple(sorted(start_qnames))
    if key in cache:
        return cache[key]
    out = []
    for start in start_qnames:
        def visit(fn, op, chain):
            kind, cat = op["kind"], op.get("category")
            if kind == "stdio":
                out.append((op, chain))
            elif kind == "call" and cat in (
                    "blocking", "sleep", "sleep_bounded",
                    "condvar_wait", "condvar_waitfor"):
                out.append((op, chain))
            return False

        cg.walk(prog, start, visit)
    cache[key] = out
    return out


# Rule 2 exempts the implementation of the blocking primitives
# themselves: pmkm::Mutex/CondVar bodies and the schedcheck deterministic
# scheduler exist to park threads — blocking is their contract, and their
# internal std:: waits are exactly what the `condvar_wait` category
# models at user call sites. Users of the primitives get no exemption.
RULE2_EXEMPT_SCOPES = ("pmkm::Mutex::", "pmkm::CondVar::",
                       "pmkm::schedcheck::")


def check_no_block_under_lock(prog, findings):
    rule = "no-block-under-lock"
    cache = {}
    for fn in prog.functions.values():
        if fn.qname.startswith(RULE2_EXEMPT_SCOPES):
            continue
        treat_locked = fn.requires_lock or rule in fn.annotations
        for op in fn.ops:
            under = op.get("under_lock") or []
            if not under and not treat_locked:
                continue
            kind, cat = op["kind"], op.get("category")
            site_chain = [(fn.qname, fn.file, fn.line)]
            site_ok = (rule in op["allowed"]
                       or cg.chain_site_allowed(prog, rule, site_chain))
            # Direct ops of the holder.
            if kind == "stdio":
                if not site_ok:
                    findings.append(cg.Finding(
                        rule, site_chain, op,
                        "stdio while holding a pmkm::Mutex"))
                continue
            if kind == "call" and cat in ("blocking", "sleep",
                                          "sleep_bounded"):
                if not site_ok:
                    findings.append(cg.Finding(
                        rule, site_chain, op,
                        f"blocking `{op['name']}` while holding a "
                        f"pmkm::Mutex"))
                continue
            # Direct condvar waits release the held mutex: exempt.
            if kind == "call" and cat in ("condvar_wait",
                                          "condvar_waitfor"):
                continue
            # Descend into project callees: anything blocking inside
            # them blocks while our lock is held.
            if kind == "call" and op.get("project"):
                if rule in op["allowed"]:
                    continue
                for sub_op, sub_chain in blocking_closure(
                        prog, op["project"], cache):
                    if rule in sub_op["allowed"]:
                        continue
                    chain = ([(fn.qname, op["file"], op["line"])]
                             + sub_chain)
                    if cg.chain_site_allowed(prog, rule, chain):
                        continue
                    findings.append(cg.Finding(
                        rule, chain, sub_op,
                        f"`{sub_op['disp']}` blocks while the caller "
                        f"holds a pmkm::Mutex"))


BASELINE_HEADER = """\
# pmkm_ctxcheck baseline (ratchet: this file may only shrink).
#
# One normalized finding key per line:
#   rule|root_function|leaf_function|op_kind:op_name
# New findings fail the gate outright; entries here are tolerated but a
# key that no longer fires is an error until the line is deleted. Keep
# this file empty: fix the code or add a justified
# `// pmkm-ctxcheck: allow(<rule>)` at the site instead of listing it
# here. Regenerate with: tools/pmkm_ctxcheck.py --update-baseline
"""


class CtxcheckGate(cg.Gate):
    tool = "pmkm_ctxcheck"
    rules = RULES
    default_baseline = os.path.join("scripts", "ctxcheck_baseline.txt")
    baseline_header = BASELINE_HEADER

    def collect(self, ctx):
        findings = []
        check_signal_safe(ctx.prog, findings)
        check_wait_free(ctx.prog, findings)
        check_no_block_under_lock(ctx.prog, findings)
        check_bounded_handler(ctx.prog, findings)
        if ctx.virtual == "conservative" and ctx.include_unresolved:
            cg.check_unresolved(ctx.prog, findings)
        return findings


GATE = CtxcheckGate()


def main(argv=None):
    return cg.run_main([GATE], argv, prog_name="pmkm_ctxcheck",
                       doc=__doc__)


if __name__ == "__main__":
    sys.exit(main())
