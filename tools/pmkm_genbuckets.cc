// pmkm_genbuckets — generates synthetic grid-bucket files.
//
// Two modes:
//   --mode=swath  simulate MISR orbits and bin footprints into cells
//   --mode=cells  draw N-point MISR-like mixture cells directly
//
//   $ pmkm_genbuckets --out=/tmp/buckets --mode=cells --cells=4 --n=20000

#include <filesystem>
#include <iostream>

#include "common/flags.h"
#include "common/status.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/misr.h"

namespace {

int Fail(const pmkm::Status& st) {
  std::cerr << "pmkm_genbuckets: " << st << "\n";
  return pmkm::StatusExitCode(st);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "buckets";
  std::string mode = "cells";
  int64_t cells = 4;
  int64_t n = 20000;
  int64_t dim = 6;
  int64_t orbits = 4;
  int64_t min_cell_points = 100;
  double cell_degrees = 5.0;
  int64_t seed = 2004;
  pmkm::ObsFlags obs_flags;
  pmkm::FlagParser parser;
  parser
      .SetDescription(
          "pmkm_genbuckets: generate synthetic MISR-like grid-bucket "
          "files.")
      .AddString("out", &out, "output directory")
      .AddString("mode", &mode, "cells | swath")
      .AddInt("cells", &cells, "cells mode: number of cells")
      .AddInt("n", &n, "cells mode: points per cell")
      .AddInt("dim", &dim, "cells mode: attributes per point")
      .AddInt("orbits", &orbits, "swath mode: orbits to simulate")
      .AddInt("min-cell-points", &min_cell_points,
              "swath mode: skip smaller cells")
      .AddDouble("cell-degrees", &cell_degrees,
                 "swath mode: grid cell size")
      .AddInt("seed", &seed, "master random seed");
  obs_flags.Register(&parser);
  const pmkm::Status st = parser.Parse(argc, argv);
  if (st.IsCancelled()) return 0;
  if (!st.ok()) {
    std::cerr << parser.Usage(argv[0]);
    return Fail(st);
  }
  if (const pmkm::Status os = obs_flags.Apply(); !os.ok()) {
    return Fail(os);
  }

  std::filesystem::create_directories(out);
  size_t written = 0, total_points = 0;

  if (mode == "cells") {
    pmkm::Rng rng(static_cast<uint64_t>(seed));
    for (int64_t c = 0; c < cells; ++c) {
      pmkm::GridBucket bucket;
      bucket.cell = pmkm::GridCellId{static_cast<int32_t>(c % 180 - 90),
                                     static_cast<int32_t>(c % 360 - 180)};
      pmkm::MisrCellSpec spec;
      spec.dim = static_cast<size_t>(dim);
      pmkm::Rng cell_rng = rng.Fork(static_cast<uint64_t>(c));
      bucket.points = pmkm::GenerateMisrLikeCell(
          static_cast<size_t>(n), &cell_rng, spec);
      const std::string path =
          out + "/" + bucket.cell.ToString() + ".pmkb";
      const pmkm::Status ws = pmkm::WriteGridBucket(path, bucket);
      if (!ws.ok()) return Fail(ws);
      ++written;
      total_points += bucket.points.size();
    }
  } else if (mode == "swath") {
    pmkm::MisrSimConfig config;
    config.seed = static_cast<uint64_t>(seed);
    pmkm::MisrSwathSimulator sim(config);
    auto grid = sim.SimulateToGrid(static_cast<size_t>(orbits),
                                   cell_degrees);
    if (!grid.ok()) return Fail(grid.status());
    for (const auto& [id, points] : grid->buckets()) {
      if (points.size() < static_cast<size_t>(min_cell_points)) continue;
      pmkm::GridBucket bucket;
      bucket.cell = id;
      bucket.points = points;
      const std::string path = out + "/" + id.ToString() + ".pmkb";
      const pmkm::Status ws = pmkm::WriteGridBucket(path, bucket);
      if (!ws.ok()) return Fail(ws);
      ++written;
      total_points += points.size();
    }
  } else {
    return Fail(pmkm::Status::InvalidArgument(
        "unknown --mode=" + mode + " (use cells|swath)"));
  }

  std::cout << "wrote " << written << " bucket file(s), " << total_points
            << " points, to " << out << "\n";
  if (written == 0) {
    return Fail(pmkm::Status::NotFound(
        "no bucket qualified (every cell was below --min-cell-points?)"));
  }
  return 0;
}
