#!/usr/bin/env python3
"""pmkm_callgraph: shared whole-program call-graph engine for the pmkm
static analyzers (DESIGN.md §16–17), and the combined single-parse gate.

Two analyzers sit on this library:

  tools/pmkm_ctxcheck.py   execution-context safety (signal-safe,
                           no-block-under-lock, wait-free,
                           bounded-handler) — DESIGN.md §16
  tools/pmkm_detcheck.py   output-byte determinism (unordered-iter,
                           nondet-source, ptr-order, fp-flags) —
                           DESIGN.md §17

The engine owns everything rule-agnostic: compile_commands.json
ingestion and the staleness gate, header-first TU parsing with the
self-contained frontend (this container ships no libclang; the parser
is tuned to the project idiom pmkm_lint already *enforces* — annotated
Mutex/MutexLock/CondVar wrappers only, no raw sync, no naked new), CHA
virtual resolution with receiver-type narrowing, escaping-callable
reporting, witness chains, and the ratcheted-baseline/sysexits
contract. The analyzers contribute only rule knowledge (root
annotations, knowledge-base categories, check visitors).

Run this module directly to run BOTH analyzers over ONE compdb read and
ONE source parse — the CI gate entry point (run_static_analysis.sh
stage 4). Each analyzer keeps its own ratchet baseline and prints its
own status line; the exit code is the worst of the two:

  tools/pmkm_callgraph.py [--root DIR] [--compdb PATH]
                          [--update-baseline] [--virtual {cha,conservative}]
                          [--dump-callgraph PATH] [--list-rules] [--stats]

Exit codes follow the sysexits contract of pmkm_inspect/pmkm_lint:
  0   clean (or all findings baselined)
  64  usage error
  65  findings / stale baseline / stale compile_commands.json
  66  compile_commands.json (or an input file) not found
  74  I/O error reading inputs
"""

import argparse
import bisect
import json
import os
import re
import sys
import time

EX_OK, EX_USAGE, EX_DATAERR, EX_NOINPUT, EX_IOERR = 0, 64, 65, 66, 74

# Annotation vocabulary (src/common/annotations.h) — the union over all
# analyzers, so one parse serves every gate. Each analyzer decides which
# rules it roots on.
ANNOTATION_MACROS = {
    "PMKM_SIGNAL_SAFE": "signal-safe",
    "PMKM_WAITFREE": "wait-free",
    "PMKM_NO_BLOCK_UNDER_LOCK": "no-block-under-lock",
    "PMKM_BOUNDED_HANDLER": "bounded-handler",
    "PMKM_DETERMINISTIC": "deterministic",
}

# Both analyzers' allow tags are parsed into the same site map; rule
# names are disjoint between tools, so there is no cross-talk.
SUPPRESS_RE = re.compile(
    r"pmkm-(?:ctxcheck|detcheck):\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

# ---------------------------------------------------------------------------
# Knowledge base: classification of calls that leave the project graph.
# Categories: blocking (unbounded), sleep (unbounded), sleep_bounded,
# alloc, lock, condvar_wait, condvar_waitfor, notify, stdio, throw, safe.

EXTERNAL_BLOCKING = {
    "read", "pread", "readv", "write", "pwrite", "writev",
    "recv", "recvfrom", "recvmsg", "send", "sendto", "sendmsg",
    "accept", "accept4", "connect", "poll", "ppoll", "select",
    "epoll_wait", "fsync", "fdatasync", "sync_file_range", "flock",
    "waitpid", "system", "popen", "getline", "fread", "fwrite",
    "fflush", "flush", "open", "join", "wait", "wait_for",
    "wait_until",
}
EXTERNAL_SLEEP = {"sleep", "usleep", "nanosleep"}
EXTERNAL_SLEEP_BOUNDED = {"sleep_for", "sleep_until"}
EXTERNAL_ALLOC = {
    "malloc", "calloc", "realloc", "free", "strdup", "make_unique",
    "make_shared", "push_back", "emplace", "emplace_back",
    "emplace_front", "insert", "resize", "reserve", "append", "assign",
    "to_string", "substr", "str", "string", "vector",
    "ostringstream", "stringstream",
}
EXTERNAL_THROW = {"at", "stoi", "stol", "stoul", "stoull", "stof", "stod"}
EXTERNAL_LOCK = {"lock", "try_lock", "lock_guard", "unique_lock",
                 "scoped_lock"}
EXTERNAL_NOTIFY = {"notify_one", "notify_all"}

# POSIX async-signal-safe allowlist subset actually used by the project,
# plus harmless value utilities. `backtrace` is allowed with a caveat:
# its first call may dlopen/allocate, so CpuProfiler::Start() warms it up
# before installing the handler (see src/obs/profiler.cc).
SIGNAL_SAFE_ALLOW = {
    "backtrace", "memcpy", "memmove", "memset", "strlen",
    "raise", "kill", "abort", "_exit", "_Exit",
    "signal", "sigaction", "sigemptyset", "sigfillset", "sigaddset",
    "sigprocmask", "pthread_sigmask",
    "clock_gettime", "time", "gettimeofday", "getpid", "write", "read",
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set", "min", "max", "move", "forward", "data", "size",
    "begin", "end",
}

# Project sync primitives: classified directly, never descended into
# (their bodies are the wrapper implementation / schedcheck hooks).
PRIMITIVE_SUFFIXES = {
    "Mutex::Lock": "lock",
    "Mutex::TryLock": "lock",
    "Mutex::Unlock": "safe",
    "Mutex::AssertHeld": "safe",
    "CondVar::Wait": "condvar_wait",
    "CondVar::WaitFor": "condvar_waitfor",
    "CondVar::NotifyOne": "notify",
    "CondVar::NotifyAll": "notify",
}

# Nondeterministic engine/value types watched at declaration sites
# (pmkm_detcheck's nondet-source rule). Kept here so the parser emits
# `typedecl` ops in the one shared pass; analyzers that do not care
# simply ignore the op kind.
NONDET_TYPE_WATCH = {
    "random_device", "mt19937", "mt19937_64", "default_random_engine",
    "minstd_rand", "minstd_rand0", "knuth_b", "ranlux24", "ranlux48",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof",
    "alignof", "alignas", "decltype", "noexcept", "static_assert",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "typeid", "throw", "new", "delete", "do", "else", "case", "default",
    "defined", "operator", "template", "typename", "using", "namespace",
    "assert",
}

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")


def strip_comments_and_strings(text):
    """Blank comments and string/char literals, preserving line structure
    (same technique as pmkm_lint)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, i = "line_comment", i + 2
                out.append("  ")
                continue
            if c == "/" and nxt == "*":
                state, i = "block_comment", i + 2
                out.append("  ")
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
            out.append(c if c == "\n" else " ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state, i = "code", i + 2
                out.append("  ")
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            elif c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            elif c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def strip_preprocessor(text):
    """Blank preprocessor directive lines (incl. continuations) so both
    arms of #if/#else are parsed as plain code."""
    out_lines = []
    cont = False
    for line in text.split("\n"):
        is_directive = cont or line.lstrip().startswith("#")
        cont = is_directive and line.rstrip().endswith("\\")
        out_lines.append(" " * len(line) if is_directive else line)
    return "\n".join(out_lines)


def strip_template_args(text):
    """Iteratively remove innermost <...> groups (declaration contexts
    only — do not use on statements with comparisons)."""
    prev = None
    while prev != text:
        prev = text
        text = re.sub(r"<[^<>]*>", " ", text)
    return text


class FunctionInfo:
    __slots__ = ("qname", "cls", "name", "file", "line", "annotations",
                 "ops", "requires_lock")

    def __init__(self, qname, cls, name, file, line):
        self.qname = qname
        self.cls = cls          # enclosing class qname or None
        self.name = name        # unqualified method/function name
        self.file = file
        self.line = line
        self.annotations = set()   # rule ids
        self.ops = []              # list of op dicts
        self.requires_lock = False


class ClassInfo:
    __slots__ = ("qname", "name", "bases", "methods")

    def __init__(self, qname, name):
        self.qname = qname
        self.name = name
        self.bases = []    # unqualified base-name strings
        self.methods = set()


class Program:
    def __init__(self):
        self.functions = {}       # qname -> FunctionInfo (defs merged)
        self.classes = {}         # qname -> ClassInfo
        self.class_by_name = {}   # unqualified name -> [qname]
        self.method_index = {}    # method name -> set of class qnames
        self.free_index = {}      # free fn name -> set of qnames
        self.decl_annotations = {}  # (class unqual name, method) -> rules
        self.free_decl_annotations = {}  # free fn name -> rules
        self.field_types = {}     # (class qname, field) -> type last name
        self.local_types = {}     # fn qname -> {var -> type last name}
        # Container-kind tracking (pmkm_detcheck D1/D3): only containers
        # whose iteration order is suspect are recorded.
        self.local_containers = {}   # fn qname -> {var -> flags dict}
        self.field_containers = {}   # (class qname, field) -> flags dict
        self.container_aliases = {}  # alias type name -> flags dict
        self.callable_names = set()      # std::function fields/aliases
        self.address_taken = set()       # '&Class::Method' style refs
        self.allow_sites = {}  # (file, line) -> rules allowed at the site
        self.parse_errors = []

    def function(self, qname, cls, name, file, line):
        fn = self.functions.get(qname)
        if fn is None:
            fn = FunctionInfo(qname, cls, name, file, line)
            self.functions[qname] = fn
        return fn


CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*)([A-Za-z_]\w*)\s*(?:<[^<>;(){}=]*>\s*)?\(")
RECEIVER_RE = re.compile(r"([A-Za-z_]\w*|\)|\])\s*(?:\.|->)\s*$")
MUTEXLOCK_RE = re.compile(
    r"\b(?:pmkm\s*::\s*)?MutexLock\s+\w+\s*[({]\s*([^;){}]*)")
STDIO_USE_RE = re.compile(r"std\s*::\s*c(?:out|err|log|in)\b"
                          r"|std\s*::\s*[io]?fstream\b")
THROW_RE = re.compile(r"(?<![\w:])throw\b")
DEREF_CALL_RE = re.compile(r"\(\s*\*\s*([A-Za-z_]\w*)\s*\)\s*\(")
ADDR_METHOD_RE = re.compile(r"&\s*([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)+)\b")
CALLABLE_DECL_RE = re.compile(
    r"std\s*::\s*function\s*<[^;]*>\s*&?\s*([A-Za-z_]\w*)")
CALLABLE_ALIAS_RE = re.compile(
    r"using\s+([A-Za-z_]\w*)\s*=\s*std\s*::\s*function\b")
LAMBDA_TAIL_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?(?:noexcept\s*)?"
    r"(?:->\s*[^{;]+?)?\s*$")
TYPE_DECL_RE = re.compile(
    r"^(?:(?:const|mutable|static|constexpr|volatile|struct|class)\s+)*"
    r"([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*)"
    r"(?:\s+const)?\s*[&*]*(?:\s*const\s*)?[&*]*\s+"
    r"([A-Za-z_]\w*)\s*$")
NON_TYPE_WORDS = {"return", "using", "typedef", "else", "case", "goto",
                  "auto", "void", "delete", "new", "throw", "public",
                  "private", "protected", "friend", "explicit", "virtual",
                  "inline", "extern", "break", "continue", "do"}
NS_RE = re.compile(r"\bnamespace(?:\s+([A-Za-z_]\w*))?\s*$")
CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:PMKM_\w+\s*(?:\([^()]*\)\s*)?)*"
    r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::\s*(.*))?$", re.S)
# Containers whose iteration order depends on hashing (unordered) — and,
# when keyed by pointer, on allocation addresses (ptr_key). The pmkm
# tree has no abseil, but the flat_hash names are cheap future-proofing.
CONTAINER_RE = re.compile(
    r"\b(?:std\s*::\s*|absl\s*::\s*)?"
    r"(unordered_map|unordered_set|unordered_multimap|unordered_multiset|"
    r"map|set|multimap|multiset|flat_hash_map|flat_hash_set)\s*<")
TYPE_ALIAS_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=\s*(.+)$", re.S)
PTR_INT_CAST_RE = re.compile(
    r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\b")
PTR_HASH_RE = re.compile(r"\bhash\s*<[^<>;]*\*")
TYPEDECL_WATCH_RE = re.compile(
    r"\b(" + "|".join(sorted(NONDET_TYPE_WATCH)) + r")\s+[A-Za-z_]\w*")


def container_kind_of(text):
    """Flags dict for a declaration (or alias RHS) naming an order-suspect
    container, else None. `unordered`: hash-ordered; `ptr_key`: key (first
    template argument) is a pointer type."""
    m = CONTAINER_RE.search(text)
    if not m:
        return None
    name = m.group(1)
    unordered = name.startswith(("unordered_", "flat_hash_"))
    # Balanced scan of the template argument list.
    depth, j = 1, m.end()
    args_start = m.end()
    first_arg_end = None
    while j < len(text) and depth:
        c = text[j]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c == "," and depth == 1 and first_arg_end is None:
            first_arg_end = j
        j += 1
    if depth:
        return None
    first_arg = text[args_start:first_arg_end if first_arg_end is not None
                     else j - 1]
    ptr_key = "*" in first_arg or re.search(r"\buintptr_t\b|\bintptr_t\b",
                                            first_arg) is not None
    if not unordered and not ptr_key:
        return None
    return {"unordered": unordered, "ptr_key": ptr_key,
            "container": name, "end": j}


class FileParser:
    """One pass over a source file: scope tracking, function defs,
    call/op extraction, lock-state tracking."""

    def __init__(self, program, relpath, text):
        self.prog = program
        self.relpath = relpath
        self.raw_lines = text.splitlines()
        stripped = strip_preprocessor(strip_comments_and_strings(text))
        self.text = stripped
        self.nl = [m.start() for m in re.finditer("\n", stripped)]
        self.scopes = []   # list of dicts: kind, info, locks, held
        # Program-wide allow map so a suppression anywhere on a witness
        # chain (not just at the leaf op) can silence a finding. An allow
        # on line L covers sites on L and L+1 (comment-above form).
        for i, raw in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(raw)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                for site in ((relpath, i), (relpath, i + 1)):
                    program.allow_sites.setdefault(site, set()).update(rules)

    def line_of(self, offset):
        return bisect.bisect_right(self.nl, offset) + 1

    def allowed_at(self, lineno):
        allowed = set()
        for cand in (lineno, lineno - 1):
            if 1 <= cand <= len(self.raw_lines):
                m = SUPPRESS_RE.search(self.raw_lines[cand - 1])
                if m:
                    allowed.update(r.strip() for r in m.group(1).split(","))
        return allowed

    # -- scope helpers ------------------------------------------------------

    def ns_prefix(self):
        parts = []
        for s in self.scopes:
            if s["kind"] == "ns" and s["name"]:
                parts.append(s["name"])
            elif s["kind"] == "class":
                parts.append(s["info"].name)
        return "::".join(parts)

    def enclosing_function(self):
        for s in reversed(self.scopes):
            if s["kind"] == "func":
                return s
        return None

    def enclosing_class(self):
        for s in reversed(self.scopes):
            if s["kind"] == "class":
                return s["info"]
            if s["kind"] in ("func", "lambda"):
                return None
        return None

    def in_lambda(self):
        for s in reversed(self.scopes):
            if s["kind"] == "lambda":
                return True
            if s["kind"] == "func":
                return False
        return False

    def held_locks(self):
        """Locks held at this point in the innermost function (lambda
        bodies do not inherit the definition-site lock state)."""
        held = []
        for s in reversed(self.scopes):
            held.extend(s.get("locks", ()))
            if s["kind"] in ("func", "lambda"):
                break
        return held

    # -- main loop ----------------------------------------------------------

    def parse(self):
        text = self.text
        pending_start = 0
        pending = []
        i, n = 0, len(text)
        paren = 0
        while i < n:
            c = text[i]
            if c == "(":
                paren += 1
                pending.append(c)
            elif c == ")":
                paren = max(0, paren - 1)
                pending.append(c)
            elif c == ";" and paren == 0:
                self.flush_statement("".join(pending), pending_start)
                pending = []
                pending_start = i + 1
            elif c == "{":
                self.open_brace("".join(pending), pending_start, i)
                pending = []
                pending_start = i + 1
                paren = 0
            elif c == "}":
                self.flush_statement("".join(pending), pending_start)
                pending = []
                pending_start = i + 1
                if self.scopes:
                    self.scopes.pop()
                paren = 0
            else:
                pending.append(c)
            i += 1
        # EOF: tolerate unbalanced scopes (e.g. unbalanced #if arms).
        self.scopes = []

    def open_brace(self, pending, pending_start, brace_pos):
        stripped = pending.strip()
        fn_scope = self.enclosing_function()
        if fn_scope is not None:
            # Inside a function: lambda / control block / init list.
            self.flush_statement(pending, pending_start, terminal=True)
            if LAMBDA_TAIL_RE.search(stripped) and "[" in stripped:
                self.scopes.append({"kind": "lambda", "locks": []})
            else:
                self.scopes.append({"kind": "block", "locks": []})
            return
        # Namespace / class scope.
        m = NS_RE.search(stripped)
        if m and not self.enclosing_class():
            self.scopes.append({"kind": "ns", "name": m.group(1) or ""})
            return
        if "extern" in stripped and '"' in stripped:
            self.scopes.append({"kind": "ns", "name": ""})
            return
        m = CLASS_RE.search(strip_template_args(stripped))
        if m and not stripped.endswith("="):
            name = m.group(1)
            prefix = self.ns_prefix()
            qname = f"{prefix}::{name}" if prefix else name
            info = self.prog.classes.get(qname)
            if info is None:
                info = ClassInfo(qname, name)
                self.prog.classes[qname] = info
                self.prog.class_by_name.setdefault(name, []).append(qname)
            if m.group(2):
                for part in m.group(2).split(","):
                    words = re.findall(r"[A-Za-z_]\w*", part)
                    words = [w for w in words
                             if w not in ("public", "private", "protected",
                                          "virtual", "final")]
                    if words:
                        info.bases.append(words[-1])
            self.scopes.append({"kind": "class", "info": info})
            return
        sig = self.match_function_sig(stripped)
        if sig is not None:
            name, anns = sig
            self.start_function(name, anns, pending, pending_start)
            return
        # enum/union/array-init at namespace scope: opaque block.
        self.scopes.append({"kind": "block", "locks": []})

    def match_function_sig(self, stripped):
        """Return (name, annotations) if `stripped` looks like a function
        signature (possibly with ctor-init-list tail), else None."""
        if not stripped or stripped.endswith(("=", ",", "(")):
            return None
        clean = strip_template_args(re.sub(r"\[\[[^\]]*\]\]", " ", stripped))
        for m in re.finditer(r"([~A-Za-z_][\w]*(?:\s*::\s*~?[A-Za-z_]\w*)*)"
                             r"\s*\(", clean):
            name = re.sub(r"\s+", "", m.group(1))
            last = name.rsplit("::", 1)[-1].lstrip("~")
            if last in CPP_KEYWORDS or last.startswith("PMKM_"):
                continue
            # balance parens from the match
            depth, j = 0, m.end() - 1
            while j < len(clean):
                if clean[j] == "(":
                    depth += 1
                elif clean[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if depth != 0:
                continue
            tail = clean[j + 1:]
            if ";" in tail or "}" in tail:
                continue
            anns = {rule for macro, rule in ANNOTATION_MACROS.items()
                    if re.search(r"\b%s\b" % macro, stripped)}
            return name, anns
        return None

    def start_function(self, name, anns, pending, pending_start):
        cls = self.enclosing_class()
        prefix = self.ns_prefix()
        unqual = name.rsplit("::", 1)[-1]
        if cls is not None:
            qname = f"{cls.qname}::{unqual}"
            cls.methods.add(unqual)
            cls_qname = cls.qname
        elif "::" in name:
            # Out-of-line definition: Class::Method or ns::Free.
            owner = name.rsplit("::", 1)[0].replace(" ", "")
            owner_q = self.resolve_class_name(owner, prefix)
            if owner_q:
                qname = f"{owner_q}::{unqual}"
                self.prog.classes[owner_q].methods.add(unqual)
                cls_qname = owner_q
            else:
                qname = (f"{prefix}::{owner}::{unqual}" if prefix
                         else f"{owner}::{unqual}")
                cls_qname = None
        else:
            qname = f"{prefix}::{unqual}" if prefix else unqual
            cls_qname = None
        line = self.line_of(pending_start + max(0, len(pending)
                                                - len(pending.lstrip())))
        fn = self.prog.function(qname, cls_qname, unqual, self.relpath, line)
        fn.annotations |= anns
        if re.search(r"\bPMKM_REQUIRES\b", pending) or unqual.endswith(
                "Locked"):
            fn.requires_lock = True
        if cls_qname is None and unqual and "::" not in name:
            self.prog.free_index.setdefault(unqual, set()).add(qname)
        if cls_qname is not None:
            self.prog.method_index.setdefault(unqual, set()).add(cls_qname)
        self.scopes.append({"kind": "func", "info": fn, "locks": [],
                            "held": []})
        # Parameter types for receiver resolution.
        clean = strip_template_args(re.sub(r"\[\[[^\]]*\]\]", " ", pending))
        pm = re.search(r"%s\s*\(" % re.escape(unqual), clean)
        if pm:
            depth, j = 1, pm.end()
            while j < len(clean) and depth:
                if clean[j] == "(":
                    depth += 1
                elif clean[j] == ")":
                    depth -= 1
                j += 1
            self.record_param_types(clean[pm.end():j - 1], fn)
        # Container-kind flags for parameters come from the RAW signature
        # (the template arguments carry the information).
        rm = re.search(r"%s\s*\(" % re.escape(unqual), pending)
        if rm:
            depth, j = 1, rm.end()
            while j < len(pending) and depth:
                if pending[j] == "(":
                    depth += 1
                elif pending[j] == ")":
                    depth -= 1
                j += 1
            self.record_param_containers(pending[rm.end():j - 1], fn)
        # Calls in the signature / ctor-init-list belong to the function.
        self.extract_ops(pending, pending_start, fn)

    def resolve_class_name(self, owner, prefix):
        """Map an out-of-line definition owner to a known class qname."""
        owner_last = owner.rsplit("::", 1)[-1]
        cands = self.prog.class_by_name.get(owner_last, [])
        if not cands:
            return None
        if len(cands) == 1:
            return cands[0]
        for c in cands:
            if prefix and c.startswith(prefix):
                return c
        return cands[0]

    # -- statements ---------------------------------------------------------

    def flush_statement(self, stmt, start, terminal=False):
        if not stmt.strip():
            return
        fn_scope = self.enclosing_function()
        cls = self.enclosing_class()
        if fn_scope is not None:
            fq = fn_scope["info"].qname
            got = self.decl_type_of(stmt)
            if got:
                self.prog.local_types.setdefault(fq, {})[got[1]] = got[0]
                flags = (container_kind_of(stmt)
                         or self.prog.container_aliases.get(got[0]))
                if flags:
                    self.prog.local_containers.setdefault(
                        fq, {})[got[1]] = flags
            self.track_locks(stmt, start)
            self.extract_ops(stmt, start, fn_scope["info"])
            return
        if cls is not None:
            self.class_member_decl(stmt, cls)
            return
        # Namespace scope: collect callable and container aliases;
        # ignore the rest.
        for m in CALLABLE_ALIAS_RE.finditer(stmt):
            self.prog.callable_names.add(m.group(1))
        self.record_type_alias(stmt)

    def record_type_alias(self, stmt):
        m = TYPE_ALIAS_RE.search(stmt)
        if m:
            flags = container_kind_of(m.group(2))
            if flags:
                self.prog.container_aliases[m.group(1)] = flags

    @staticmethod
    def decl_type_of(text):
        """(type-last-component, var) for a declaration head, or None."""
        clean = strip_template_args(re.sub(r"\[\[[^\]]*\]\]", " ", text))
        clean = re.sub(r"PMKM_\w+\s*(?:\([^()]*\))?", " ", clean)
        head = re.split(r"[={(]", clean, 1)[0].strip().rstrip(",")
        m = TYPE_DECL_RE.match(head)
        if not m:
            return None
        ty = re.sub(r"\s+", "", m.group(1)).rsplit("::", 1)[-1]
        if ty in NON_TYPE_WORDS or m.group(2) in NON_TYPE_WORDS:
            return None
        return ty, m.group(2)

    def record_param_types(self, params_text, fn):
        locals_ = self.prog.local_types.setdefault(fn.qname, {})
        depth = 0
        part = []
        parts = []
        for c in params_text:
            if c == "(":
                depth += 1
            elif c == ")":
                depth = max(0, depth - 1)
            if c == "," and depth == 0:
                parts.append("".join(part))
                part = []
            else:
                part.append(c)
        parts.append("".join(part))
        for p in parts:
            got = self.decl_type_of(p)
            if got:
                locals_[got[1]] = got[0]

    def record_param_containers(self, raw_params, fn):
        """Container-kind flags for by-(const-)reference container
        parameters, split on template-depth-aware top-level commas."""
        depth = 0
        part = []
        parts = []
        for c in raw_params:
            if c in "(<":
                depth += 1
            elif c in ")>":
                depth = max(0, depth - 1)
            if c == "," and depth == 0:
                parts.append("".join(part))
                part = []
            else:
                part.append(c)
        parts.append("".join(part))
        for p in parts:
            flags = container_kind_of(p)
            if not flags:
                continue
            m = re.search(r"[&\s]\s*([A-Za-z_]\w*)\s*$", p)
            if m:
                self.prog.local_containers.setdefault(
                    fn.qname, {})[m.group(1)] = flags

    def class_member_decl(self, stmt, cls):
        # The first declaration after an access specifier arrives with the
        # label glued on ("private:\n  std::map<...> m_") — strip it so
        # decl_type_of sees a clean declaration head.
        stmt = re.sub(r"^\s*(?:public|protected|private)\s*:\s*", "", stmt)
        for m in CALLABLE_ALIAS_RE.finditer(stmt):
            self.prog.callable_names.add(m.group(1))
        for m in CALLABLE_DECL_RE.finditer(stmt):
            self.prog.callable_names.add(m.group(1))
        self.record_type_alias(stmt)
        clean = strip_template_args(re.sub(r"\[\[[^\]]*\]\]", " ", stmt))
        sig = self.match_function_sig(clean.strip())
        if sig is None:
            got = self.decl_type_of(stmt)
            if got:
                ty, var = got
                if ty in self.prog.callable_names:
                    self.prog.callable_names.add(var)
                else:
                    self.prog.field_types[(cls.qname, var)] = ty
                    flags = (container_kind_of(stmt)
                             or self.prog.container_aliases.get(ty))
                    if flags:
                        self.prog.field_containers[(cls.qname, var)] = flags
            return
        name, anns = sig
        unqual = name.rsplit("::", 1)[-1]
        cls.methods.add(unqual)
        self.prog.method_index.setdefault(unqual, set()).add(cls.qname)
        if anns:
            key = (cls.name, unqual)
            self.prog.decl_annotations.setdefault(key, set()).update(anns)
        if re.search(r"\bPMKM_REQUIRES\b", stmt) or unqual.endswith("Locked"):
            self.prog.decl_annotations.setdefault(
                (cls.name, unqual), set()).add("__requires__")

    def track_locks(self, stmt, start):
        scope = self.scopes[-1] if self.scopes else None
        if scope is None or scope["kind"] not in ("func", "block"):
            return
        for m in MUTEXLOCK_RE.finditer(stmt):
            lock_expr = re.sub(r"\s+", "", m.group(1)) or "<mutex>"
            scope.setdefault("locks", []).append(lock_expr)
        for m in re.finditer(r"([A-Za-z_][\w.>-]*)\s*(?:\.|->)\s*Lock\s*\(",
                             stmt):
            scope.setdefault("locks", []).append(m.group(1))
        for m in re.finditer(r"([A-Za-z_][\w.>-]*)\s*(?:\.|->)\s*Unlock\s*"
                             r"\(", stmt):
            expr = m.group(1)
            for s in reversed(self.scopes):
                if expr in s.get("locks", ()):
                    s["locks"].remove(expr)
                    break
                if s["kind"] in ("func", "lambda"):
                    break

    def add_op(self, fn, kind, name, line, targets=None, disp=None):
        fn.ops.append({
            "kind": kind, "name": name, "disp": disp or name,
            "file": self.relpath, "line": line,
            "under_lock": list(self.held_locks()) if not self.in_lambda()
                          else [],
            "in_lambda": self.in_lambda(),
            "targets": targets or [],
            "allowed": self.allowed_at(line),
        })

    def extract_iteration_ops(self, stmt, start, fn):
        """Range-for ops over named containers (pmkm_detcheck D1/D3).
        The container kind is resolved at CHECK time, not here: a method
        defined inside the class body may iterate a field declared
        further down, before the parser has seen the declaration."""
        for m in re.finditer(r"\bfor\s*\(", stmt):
            depth, j = 1, m.end()
            while j < len(stmt) and depth:
                if stmt[j] == "(":
                    depth += 1
                elif stmt[j] == ")":
                    depth -= 1
                j += 1
            inner = stmt[m.end():j - 1]
            if depth or ";" in inner:
                continue    # unbalanced, or a classic three-clause for
            colon = None
            pdepth = 0
            for k, c in enumerate(inner):
                if c in "([":
                    pdepth += 1
                elif c in ")]":
                    pdepth = max(0, pdepth - 1)
                elif (c == ":" and pdepth == 0
                      and (k == 0 or inner[k - 1] != ":")
                      and (k + 1 >= len(inner) or inner[k + 1] != ":")):
                    colon = k
                    break
            if colon is None:
                continue
            expr = re.sub(r"\s+", "", inner[colon + 1:])
            if not expr or not re.match(r"^[\w.>\-*()\[\]]+$", expr):
                continue
            self.add_op(fn, "iter", expr, self.line_of(start + m.start()),
                        disp=f"range-for over {expr}")

    def extract_ops(self, stmt, start, fn):
        for m in THROW_RE.finditer(stmt):
            self.add_op(fn, "throw", "throw", self.line_of(start + m.start()))
        for m in STDIO_USE_RE.finditer(stmt):
            self.add_op(fn, "stdio", m.group(0).replace(" ", ""),
                        self.line_of(start + m.start()))
        for m in DEREF_CALL_RE.finditer(stmt):
            self.add_op(fn, "indirect", "(*%s)" % m.group(1),
                        self.line_of(start + m.start()))
        for m in ADDR_METHOD_RE.finditer(stmt):
            ref = re.sub(r"\s+", "", m.group(1))
            if not ref.startswith("std::"):
                self.prog.address_taken.add(ref)
        self.extract_iteration_ops(stmt, start, fn)
        for m in PTR_INT_CAST_RE.finditer(stmt):
            self.add_op(fn, "ptrcast", "reinterpret_cast<uintptr_t>",
                        self.line_of(start + m.start()))
        for m in PTR_HASH_RE.finditer(stmt):
            self.add_op(fn, "ptrhash", "hash<T*>",
                        self.line_of(start + m.start()))
        for m in TYPEDECL_WATCH_RE.finditer(stmt):
            self.add_op(fn, "typedecl", m.group(1),
                        self.line_of(start + m.start()),
                        disp=f"declare {m.group(1)}")
        for m in CALL_RE.finditer(stmt):
            qual = re.sub(r"\s+", "", m.group(1)).rstrip(":")
            name = m.group(2)
            if name in CPP_KEYWORDS or name.startswith("PMKM_"):
                continue
            line = self.line_of(start + m.start(1 if m.group(1) else 2))
            before = stmt[:m.start()]
            if re.search(r"\bnew\s+$", before):
                self.add_op(fn, "new", name, line, disp="new " + name)
                continue
            recv_m = RECEIVER_RE.search(before) if not qual else None
            receiver = recv_m.group(1) if recv_m else None
            if name in self.prog.callable_names or (
                    receiver is None and not qual
                    and name in self.prog.callable_names):
                self.add_op(fn, "indirect", name, line)
                continue
            self.add_op(fn, "call", name, line, targets=[{
                "qual": qual, "receiver": receiver,
                "global_ns": bool(m.group(1)) is False and
                before.rstrip().endswith("::"),
            }])


# ---------------------------------------------------------------------------
# Resolution: turn raw call ops into project edges or external categories.


def derived_closure(prog, cls_qname):
    """All classes transitively derived from cls_qname (by name match)."""
    out = set()
    target_names = {prog.classes[cls_qname].name}
    changed = True
    while changed:
        changed = False
        for q, info in prog.classes.items():
            if q in out or q == cls_qname:
                continue
            if any(b in target_names for b in info.bases):
                out.add(q)
                target_names.add(info.name)
                changed = True
    return out


def classify_external(name, receiver):
    if name in EXTERNAL_BLOCKING:
        return "blocking"
    if name in EXTERNAL_SLEEP:
        return "sleep"
    if name in EXTERNAL_SLEEP_BOUNDED:
        return "sleep_bounded"
    if name in EXTERNAL_ALLOC:
        return "alloc"
    if name in EXTERNAL_THROW:
        return "throw_ext"
    if name in EXTERNAL_LOCK:
        return "lock"
    if name in EXTERNAL_NOTIFY:
        return "notify"
    if name == "Wait":
        return "condvar_wait"
    if name == "WaitFor":
        return "condvar_waitfor"
    if name in ("NotifyOne", "NotifyAll"):
        return "notify"
    return "unknown"


def resolve(prog):
    """Rewrite each 'call' op in place: set op['project'] (list of target
    qnames) and op['category'] for external/primitive calls."""
    for fn in prog.functions.values():
        for op in fn.ops:
            if op["kind"] != "call":
                continue
            name = op["name"]
            tinfo = op["targets"][0] if op["targets"] else {}
            qual, receiver = tinfo.get("qual", ""), tinfo.get("receiver")
            op["project"] = []
            op["category"] = None

            # Static receiver type, when a field/local/param decl names it.
            rtype = None
            if receiver and receiver not in ("this", ")", "]"):
                rtype = prog.local_types.get(fn.qname, {}).get(receiver)
                if rtype is None and fn.cls:
                    rtype = prog.field_types.get((fn.cls, receiver))
            if receiver == "this":
                receiver, qual = None, ""

            # Project sync primitives (Mutex/CondVar wrappers): classified,
            # never descended into.
            prim = None
            if name in ("Lock", "TryLock", "Unlock", "AssertHeld", "Wait",
                        "WaitFor", "NotifyOne", "NotifyAll"):
                for suffix, cat in PRIMITIVE_SUFFIXES.items():
                    owner, sname = suffix.rsplit("::", 1)
                    if name != sname:
                        continue
                    if rtype is not None:
                        if rtype == owner:
                            prim = cat
                        break
                    if qual.endswith(owner) or receiver or not qual:
                        prim = cat
                        break
            elif name == "MutexLock":
                prim = "lock"
            if prim is not None:
                op["category"] = prim
                continue

            targets = set()

            def class_targets(cands):
                out = set()
                for cq in cands:
                    q = f"{cq}::{name}"
                    if q in prog.functions:
                        out.add(q)
                    for d in derived_closure(prog, cq):
                        dq = f"{d}::{name}"
                        if dq in prog.functions:
                            out.add(dq)
                return out

            if rtype is not None:
                # Known static type: resolve within its hierarchy only. A
                # known non-project type (std:: etc.) is classified by the
                # knowledge base, not smeared over every same-named method.
                targets = class_targets(prog.class_by_name.get(rtype, []))
            elif qual and qual != "std":
                owner_last = qual.rsplit("::", 1)[-1]
                targets = class_targets(prog.class_by_name.get(
                    owner_last, []))
                if not targets:
                    # ns-qualified free function
                    for q in prog.free_index.get(name, ()):
                        if q.endswith(f"{qual}::{name}") or \
                                qual in q.split("::"):
                            targets.add(q)
            elif receiver is not None or qual == "std":
                if qual != "std":
                    # Unknown receiver type: conservative name-based CHA.
                    for cq in prog.method_index.get(name, ()):
                        q = f"{cq}::{name}"
                        if q in prog.functions:
                            targets.add(q)
            else:
                # Unqualified: this-call within the class (+ bases), then
                # free functions.
                if fn.cls:
                    seen_cls = {fn.cls} | derived_closure(prog, fn.cls)
                    # also walk up: bases defining the method
                    for cq in prog.method_index.get(name, ()):
                        cinfo = prog.classes.get(fn.cls)
                        if cinfo and (cq in seen_cls or
                                      prog.classes[cq].name in cinfo.bases):
                            q = f"{cq}::{name}"
                            if q in prog.functions:
                                targets.add(q)
                    q = f"{fn.cls}::{name}"
                    if q in prog.functions:
                        targets.add(q)
                if not targets:
                    targets |= set(prog.free_index.get(name, ()))

            if targets:
                op["project"] = sorted(targets)
            else:
                op["category"] = classify_external(name, receiver)

    # Fold declaration-site annotations onto definitions.
    for (cls_name, method), anns in prog.decl_annotations.items():
        for cq in prog.class_by_name.get(cls_name, []):
            q = f"{cq}::{method}"
            fn = prog.functions.get(q)
            if fn is not None:
                if "__requires__" in anns:
                    fn.requires_lock = True
                fn.annotations |= (anns - {"__requires__"})


def expand_roots(prog, rule):
    """Annotated functions plus overrides in derived classes (an
    annotation on a virtual base method covers every implementation)."""
    roots = set()
    for fn in prog.functions.values():
        if rule in fn.annotations:
            roots.add(fn.qname)
            if fn.cls:
                for d in derived_closure(prog, fn.cls):
                    q = f"{d}::{fn.name}"
                    if q in prog.functions:
                        roots.add(q)
    # Annotations that exist only on declarations (pure virtuals).
    for (cls_name, method), anns in prog.decl_annotations.items():
        if rule not in anns:
            continue
        for cq in prog.class_by_name.get(cls_name, []):
            for d in derived_closure(prog, cq) | {cq}:
                q = f"{d}::{method}"
                if q in prog.functions:
                    roots.add(q)
    return sorted(roots)


# ---------------------------------------------------------------------------
# Findings and traversal.


class Finding:
    def __init__(self, rule, chain, op, message):
        self.rule = rule
        self.chain = chain      # [(qname, file, line), ...] root..leaf fn
        self.op = op
        self.message = message

    def key(self):
        root = self.chain[0][0] if self.chain else "?"
        leaf = self.chain[-1][0] if self.chain else "?"
        return (f"{self.rule}|{root}|{leaf}|"
                f"{self.op['kind']}:{self.op['name']}")

    def render(self):
        lines = [f"{self.op['file']}:{self.op['line']}: [{self.rule}] "
                 f"{self.message}"]
        for qname, file, line in self.chain:
            lines.append(f"    {qname} ({file}:{line})")
        lines.append(f"    -> {self.op['disp']} "
                     f"({self.op['file']}:{self.op['line']})")
        return "\n".join(lines)


def walk(prog, root_qname, visit_op):
    """BFS over project edges from root. visit_op(fn, op, chain) is
    called for every op; return True from it to stop descending a call.
    chain = [(qname, file, line-of-entry/callsite), ...]."""
    root = prog.functions[root_qname]
    queue = [(root, [(root.qname, root.file, root.line)])]
    visited = {root.qname}
    while queue:
        fn, chain = queue.pop(0)
        for op in fn.ops:
            if visit_op(fn, op, chain):
                continue
            if op["kind"] == "call":
                for t in op.get("project", []):
                    if t in visited:
                        continue
                    visited.add(t)
                    tfn = prog.functions[t]
                    queue.append(
                        (tfn, chain + [(t, op["file"], op["line"])]))


def reachable_chains(prog, root_qname):
    """{qname -> witness chain} for every project function reachable from
    the root over call edges (first chain found wins, BFS order)."""
    root = prog.functions[root_qname]
    out = {root_qname: [(root.qname, root.file, root.line)]}
    queue = [root_qname]
    while queue:
        q = queue.pop(0)
        chain = out[q]
        for op in prog.functions[q].ops:
            if op["kind"] != "call":
                continue
            for t in op.get("project", []):
                if t not in out:
                    out[t] = chain + [(t, op["file"], op["line"])]
                    queue.append(t)
    return out


def chain_allowed(rule, chain_ops):
    return any(rule in op.get("allowed", ()) for op in chain_ops if op)


def chain_site_allowed(prog, rule, chain):
    """An allow comment anywhere on the witness chain — the root's
    definition line or any call-site line — suppresses the finding."""
    return any(rule in prog.allow_sites.get((file, line), ())
               for _, file, line in chain)


def check_unresolved(prog, findings):
    """--virtual=conservative: member calls that resolve to no project
    function and no knowledge-base entry are reported, not ignored."""
    for fn in prog.functions.values():
        for op in fn.ops:
            if op["kind"] != "call" or op.get("project"):
                continue
            if op.get("category") == "unknown" and op["targets"] and \
                    op["targets"][0].get("receiver"):
                if "unresolved" in op["allowed"]:
                    continue
                findings.append(Finding(
                    "unresolved", [(fn.qname, fn.file, fn.line)], op,
                    f"member call `{op['name']}` resolves to no project "
                    f"function or knowledge-base entry"))


# ---------------------------------------------------------------------------
# Inputs: compile_commands.json, file discovery, baseline.


def find_compdb(root, explicit):
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for d in ("build-tsa", "build"):
        p = os.path.join(root, d, "compile_commands.json")
        if os.path.isfile(p):
            return p
    return None


def load_compdb(path):
    """(entries, error): the parsed compile_commands.json, read ONCE per
    gate run and shared by every analyzer (staleness + fp-flags audit)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f), None
    except (OSError, ValueError) as err:
        return None, str(err)


def compdb_command_by_file(entries, root):
    """{root-relative TU -> full compile command string}."""
    out = {}
    for e in entries or ():
        p = e.get("file", "")
        if not os.path.isabs(p):
            p = os.path.join(e.get("directory", ""), p)
        rel = os.path.relpath(os.path.realpath(p), root)
        cmd = e.get("command")
        if cmd is None:
            cmd = " ".join(e.get("arguments", ()))
        out[rel] = cmd
    return out


def compdb_staleness(root, compdb_path, entries, sources):
    """Returns a list of staleness errors: sources missing from the
    compdb, or newer than it (regenerate with cmake)."""
    compdb_files = set()
    for e in entries:
        p = e.get("file", "")
        if not os.path.isabs(p):
            p = os.path.join(e.get("directory", ""), p)
        compdb_files.add(os.path.relpath(os.path.realpath(p), root))
    errors = []
    compdb_mtime = os.path.getmtime(compdb_path)
    for rel in sources:
        if not rel.endswith((".cc", ".cpp")):
            continue
        if rel not in compdb_files:
            errors.append(f"{rel}: not in compile_commands.json "
                          f"(stale compdb; re-run cmake)")
            continue
        try:
            if os.path.getmtime(os.path.join(root, rel)) > compdb_mtime:
                errors.append(f"{rel}: newer than compile_commands.json "
                              f"(stale compdb; re-run cmake)")
        except OSError:
            pass
    return errors


def collect_sources(root, files):
    if files:
        out = [os.path.relpath(os.path.abspath(f), root) for f in files]
    else:
        out = []
        for top in ("src", "tools"):
            base = os.path.join(root, top)
            if not os.path.isdir(base):
                continue
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = sorted(d for d in dirnames
                                     if not d.startswith("."))
                for name in sorted(filenames):
                    if name.endswith(SOURCE_EXTENSIONS):
                        out.append(os.path.relpath(
                            os.path.join(dirpath, name), root))
    # Headers first: class declarations must be known before the .cc
    # files that define their methods out of line, or those definitions
    # cannot be attached to their class.
    out.sort(key=lambda p: (not p.endswith(".h"), p))
    return out


def load_baseline(path):
    entries = set()
    if path and os.path.isfile(path):
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def dump_callgraph(prog, path):
    data = {
        "functions": {
            fn.qname: {
                "file": fn.file, "line": fn.line,
                "annotations": sorted(fn.annotations),
                "requires_lock": fn.requires_lock,
                "calls": [
                    {"name": op["name"], "kind": op["kind"],
                     "line": op["line"],
                     "targets": op.get("project", []),
                     "category": op.get("category"),
                     "under_lock": bool(op.get("under_lock"))}
                    for op in fn.ops
                ],
            } for fn in prog.functions.values()
        },
        "classes": {
            c.qname: {"bases": c.bases, "methods": sorted(c.methods)}
            for c in prog.classes.values()
        },
        "callable_names": sorted(prog.callable_names),
        "address_taken": sorted(prog.address_taken),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=1, sort_keys=True)


class SysexitsParser(argparse.ArgumentParser):
    def error(self, message):
        self.print_usage(sys.stderr)
        print(f"{self.prog}: error: {message}", file=sys.stderr)
        sys.exit(EX_USAGE)


# ---------------------------------------------------------------------------
# Gate driver: one compdb read + one source parse, N analyzers.


class Gate:
    """One analyzer's rule layer. Subclasses set `tool`, `rules`,
    `default_baseline`, `baseline_header`, and implement collect(ctx)
    returning a list of Findings. ctx carries: prog, root, virtual,
    compdb_commands ({rel TU -> command} or None), include_unresolved."""

    tool = "pmkm_gate"
    rules = {}
    default_baseline = None
    baseline_header = ""

    def collect(self, ctx):
        raise NotImplementedError


class GateContext:
    def __init__(self, prog, root, virtual, compdb_commands,
                 include_unresolved):
        self.prog = prog
        self.root = root
        self.virtual = virtual
        self.compdb_commands = compdb_commands
        self.include_unresolved = include_unresolved


def run_main(gates, argv=None, prog_name="pmkm_callgraph", doc=None):
    parser = SysexitsParser(
        prog=prog_name, description=doc,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json (default: "
                             "build-tsa/ or build/ under --root)")
    parser.add_argument("--files", nargs="+", default=None,
                        help="analyze only these files (fixture mode; "
                             "skips the compdb staleness gate — pass "
                             "--compdb explicitly to still audit flags)")
    if len(gates) == 1:
        parser.add_argument("--baseline", default=None,
                            help="ratchet baseline file (default: "
                                 f"{gates[0].default_baseline} under "
                                 "--root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline entirely")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--virtual", choices=("cha", "conservative"),
                        default="cha",
                        help="cha: class-hierarchy resolution (default); "
                             "conservative: additionally report member "
                             "calls that resolve to nothing")
    parser.add_argument("--dump-callgraph", default=None, metavar="PATH")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--stats", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for gate in gates:
            for rule, desc in gate.rules.items():
                print(f"{rule:20} {desc}")
        return EX_OK

    root = os.path.abspath(args.root)
    t0 = time.time()
    sources = collect_sources(root, args.files)
    if not sources:
        print(f"{prog_name}: no sources found", file=sys.stderr)
        return EX_NOINPUT

    compdb_commands = None
    if args.files is None:
        compdb = find_compdb(root, args.compdb)
        if compdb is None:
            print(f"{prog_name}: compile_commands.json not found "
                  "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "
                  "or pass --compdb)", file=sys.stderr)
            return EX_NOINPUT
        entries, err = load_compdb(compdb)
        if err is not None:
            print(f"{prog_name}: STALE: cannot read {compdb}: {err}",
                  file=sys.stderr)
            return EX_DATAERR
        stale = compdb_staleness(root, compdb, entries, sources)
        if stale:
            for s in stale:
                print(f"{prog_name}: STALE: {s}", file=sys.stderr)
            return EX_DATAERR
        compdb_commands = compdb_command_by_file(entries, root)
    elif args.compdb:
        # Fixture mode with an explicit compdb: no staleness gate, but
        # flag audits still run against the given database.
        if not os.path.isfile(args.compdb):
            print(f"{prog_name}: {args.compdb} not found", file=sys.stderr)
            return EX_NOINPUT
        entries, err = load_compdb(args.compdb)
        if err is not None:
            print(f"{prog_name}: STALE: cannot read {args.compdb}: {err}",
                  file=sys.stderr)
            return EX_DATAERR
        compdb_commands = compdb_command_by_file(entries, root)

    program = Program()
    for rel in sources:
        path = os.path.join(root, rel)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as err:
            print(f"{prog_name}: cannot read {rel}: {err}",
                  file=sys.stderr)
            return EX_IOERR
        FileParser(program, rel, text).parse()

    resolve(program)

    if args.dump_callgraph:
        dump_callgraph(program, args.dump_callgraph)

    exit_code = EX_OK
    for i, gate in enumerate(gates):
        ctx = GateContext(program, root, args.virtual, compdb_commands,
                          include_unresolved=(i == 0))
        findings = gate.collect(ctx)

        # Dedup by key (overloads / merged defs can double-report).
        seen, unique = set(), []
        for f in findings:
            if f.key() not in seen:
                seen.add(f.key())
                unique.append(f)
        findings = unique

        baseline_path = os.path.join(root, gate.default_baseline)
        if len(gates) == 1 and getattr(args, "baseline", None):
            baseline_path = args.baseline
        baseline = (set() if args.no_baseline
                    else load_baseline(baseline_path))

        if args.update_baseline:
            with open(baseline_path, "w", encoding="utf-8") as f:
                f.write(gate.baseline_header)
                for k in sorted(f2.key() for f2 in findings):
                    f.write(k + "\n")
            print(f"{gate.tool}: baseline updated with {len(findings)} "
                  f"entr{'y' if len(findings) == 1 else 'ies'}")
            continue

        new = [f for f in findings if f.key() not in baseline]
        baselined = [f for f in findings if f.key() in baseline]
        stale_baseline = baseline - {f.key() for f in findings}

        for f in new:
            print(f.render())
            print()
        for f in baselined:
            print(f"baselined: {f.key()}")
        for k in sorted(stale_baseline):
            print(f"stale baseline entry (delete it, the baseline may only "
                  f"shrink): {k}")

        elapsed = time.time() - t0
        if args.stats and i == 0:
            nops = sum(len(fn.ops) for fn in program.functions.values())
            print(f"{prog_name}: {len(sources)} files, "
                  f"{len(program.functions)} functions, "
                  f"{len(program.classes)} classes, {nops} ops, "
                  f"{elapsed:.2f}s")
        status = "FAILED" if (new or stale_baseline) else "OK"
        print(f"{gate.tool}: {status} — {len(new)} new finding(s), "
              f"{len(baselined)} baselined, {len(stale_baseline)} stale "
              f"baseline entr{'y' if len(stale_baseline) == 1 else 'ies'} "
              f"({elapsed:.2f}s)")
        if new or stale_baseline:
            exit_code = EX_DATAERR
    return exit_code


def combined_main(argv=None):
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import pmkm_ctxcheck
    import pmkm_detcheck
    return run_main([pmkm_ctxcheck.GATE, pmkm_detcheck.GATE], argv,
                    prog_name="pmkm_callgraph", doc=__doc__)


if __name__ == "__main__":
    sys.exit(combined_main())
